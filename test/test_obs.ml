(* Tests for the observability layer (lib/obs): the trace ring buffer,
   the metrics registry, and the exporters. *)

let us = Time_ns.of_us

(* ------------------------------------------------------------------ *)
(* Trace ring buffer. *)

let with_trace ?capacity f =
  let tr = Trace.create ?capacity () in
  Trace.install tr;
  Fun.protect ~finally:Trace.uninstall (fun () -> f tr)

let event_names tr =
  List.map
    (fun { Trace.ev; _ } ->
      match ev with
      | Trace.Mark s -> s
      | Trace.Trigger k -> "trigger:" ^ k
      | _ -> "other")
    (Trace.to_list tr)

let test_trace_disabled_is_noop () =
  Alcotest.(check bool) "disabled at start" false (Trace.enabled ());
  (* Emitting with no sink installed must simply do nothing. *)
  Trace.mark ~at:Time_ns.zero "ignored";
  Trace.trigger ~at:Time_ns.zero "syscall";
  Alcotest.(check bool) "still disabled" false (Trace.enabled ())

let test_trace_basic () =
  with_trace (fun tr ->
      Alcotest.(check bool) "enabled" true (Trace.enabled ());
      Trace.mark ~at:(us 1.0) "a";
      Trace.mark ~at:(us 2.0) "b";
      Alcotest.(check int) "length" 2 (Trace.length tr);
      Alcotest.(check int) "dropped" 0 (Trace.dropped tr);
      Alcotest.(check (list string)) "oldest first" [ "a"; "b" ] (event_names tr);
      Trace.clear tr;
      Alcotest.(check int) "cleared" 0 (Trace.length tr));
  Alcotest.(check bool) "uninstalled after" false (Trace.enabled ())

let test_trace_wraparound () =
  with_trace ~capacity:4 (fun tr ->
      for i = 1 to 10 do
        Trace.mark ~at:(us (float_of_int i)) (string_of_int i)
      done;
      Alcotest.(check int) "length capped" 4 (Trace.length tr);
      Alcotest.(check int) "dropped counts overwrites" 6 (Trace.dropped tr);
      Alcotest.(check int) "total" 10 (Trace.total tr);
      Alcotest.(check (list string)) "keeps the newest, oldest first" [ "7"; "8"; "9"; "10" ]
        (event_names tr))

let test_trace_invalid_capacity () =
  Alcotest.check_raises "capacity<=0"
    (Invalid_argument "Trace.create: capacity must be positive") (fun () ->
      ignore (Trace.create ~capacity:0 () : Trace.t))

(* ------------------------------------------------------------------ *)
(* Metrics registry. *)

let test_metrics_counters () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a.b" in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  Alcotest.(check int) "counted" 42 (Metrics.counter_value c);
  (* Get-or-create: the same name is the same instrument. *)
  let c' = Metrics.counter m "a.b" in
  Metrics.incr c';
  Alcotest.(check int) "aliased" 43 (Metrics.counter_value c);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics: \"a.b\" is a counter, not a gauge") (fun () ->
      ignore (Metrics.gauge m "a.b" : Metrics.gauge))

let test_metrics_gauges_probes () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "g" in
  Alcotest.(check bool) "nan before set" true (Float.is_nan (Metrics.gauge_value g));
  Metrics.set_gauge g 2.5;
  Alcotest.(check (float 0.0)) "gauge" 2.5 (Metrics.gauge_value g);
  Metrics.probe m "p" (fun () -> 7.0);
  let seen = ref [] in
  Metrics.iter m (fun name v -> seen := (name, v) :: !seen);
  Alcotest.(check (list string)) "name-sorted iteration" [ "g"; "p" ]
    (List.rev_map fst !seen)

let test_metrics_reset () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  let g = Metrics.gauge m "g" in
  let h = Metrics.hdr m "h" in
  Metrics.incr ~by:5 c;
  Metrics.set_gauge g 1.0;
  Hdr.record h 3.0;
  Metrics.reset m;
  (* Instruments held by registration sites stay valid after reset. *)
  Alcotest.(check int) "counter zeroed" 0 (Metrics.counter_value c);
  Alcotest.(check bool) "gauge cleared" true (Float.is_nan (Metrics.gauge_value g));
  Alcotest.(check int) "histogram emptied" 0 (Hdr.count h);
  Metrics.incr c;
  Alcotest.(check int) "still wired to the registry" 1
    (Metrics.counter_value (Metrics.counter m "c"))

(* Regression: [reset] used to drop pull-style probes, so the second
   experiment run in one process (softtimers-cli all) silently lost
   every probe registered when its facility was created — notably the
   softtimer.wheel_* residency metrics. *)
let test_metrics_reset_keeps_probes () =
  let m = Metrics.create () in
  (* "Run 1" registers a probe over live state, as Wheel.create does. *)
  let resident = ref 7 in
  Metrics.probe m "wheel.resident" (fun () -> float_of_int !resident);
  let read () =
    let seen = ref None in
    Metrics.iter m (fun name v ->
        match (name, v) with
        | "wheel.resident", Metrics.Probe p -> seen := Some p
        | _ -> ());
    !seen
  in
  Alcotest.(check (option (float 0.0))) "probe live in run 1" (Some 7.0) (read ());
  (* "Run 2": the CLI resets the shared registry between experiments. *)
  Metrics.reset m;
  resident := 3;
  Alcotest.(check (option (float 0.0))) "probe survives reset" (Some 3.0) (read ());
  (* A fresh facility re-registering the same name still replaces. *)
  let resident' = ref 11 in
  Metrics.probe m "wheel.resident" (fun () -> float_of_int !resident');
  Alcotest.(check (option (float 0.0))) "re-registration replaces" (Some 11.0) (read ())

let test_metrics_prometheus () =
  let m = Metrics.create () in
  Metrics.incr ~by:42 (Metrics.counter m "softtimer.fired");
  Metrics.set_gauge (Metrics.gauge m "cpu.load") 0.5;
  Metrics.probe m "wheel.resident" (fun () -> 9.0);
  ignore (Metrics.gauge m "never.set" : Metrics.gauge);
  let h = Metrics.hdr m "softtimer.fire_delay_us" in
  List.iter (Hdr.record h) [ 1.0; 2.0; 3.0; 4.0 ];
  let text = Metrics.to_prometheus m in
  let has needle =
    let n = String.length needle and m' = String.length text in
    let rec go i = i + n <= m' && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter typed" true (has "# TYPE softtimer_fired counter");
  Alcotest.(check bool) "counter value" true (has "softtimer_fired 42");
  Alcotest.(check bool) "gauge" true (has "cpu_load 0.5");
  Alcotest.(check bool) "probe as gauge" true (has "# TYPE wheel_resident gauge");
  Alcotest.(check bool) "unset gauge skipped" false (has "never_set");
  Alcotest.(check bool) "summary typed" true
    (has "# TYPE softtimer_fire_delay_us summary");
  Alcotest.(check bool) "quantile label" true
    (has "softtimer_fire_delay_us{quantile=\"0.5\"}");
  Alcotest.(check bool) "count series" true (has "softtimer_fire_delay_us_count 4");
  Alcotest.(check bool) "sum series" true (has "softtimer_fire_delay_us_sum 10");
  (* Byte-identical on a second rendering: no timestamps, name-sorted. *)
  Alcotest.(check string) "deterministic" text (Metrics.to_prometheus m)

(* ------------------------------------------------------------------ *)
(* Hdr: constant-memory streaming histogram. *)

let test_hdr_basics () =
  let h = Hdr.create ~rel_error:0.01 ~lowest:1e-3 () in
  Alcotest.(check bool) "empty quantile is nan" true (Float.is_nan (Hdr.quantile h 0.5));
  List.iter (Hdr.record h) [ 5.0; 1.0; 3.0; -2.0 ];
  Alcotest.(check int) "count" 4 (Hdr.count h);
  Alcotest.(check (float 1e-9)) "min (negative clamped to 0)" (-2.0) (Hdr.min h);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Hdr.max h);
  Alcotest.(check (float 1e-9)) "mean is exact" 1.75 (Hdr.mean h);
  Alcotest.(check bool) "p99 near max" true (Float.abs (Hdr.quantile h 0.99 -. 5.0) <= 0.06);
  Hdr.clear h;
  Alcotest.(check int) "cleared" 0 (Hdr.count h);
  Alcotest.check_raises "bad rel_error"
    (Invalid_argument "Hdr.create: rel_error must be in (0, 0.5]") (fun () ->
      ignore (Hdr.create ~rel_error:0.0 () : Hdr.t));
  Alcotest.check_raises "bad quantile" (Invalid_argument "Hdr.quantile: q out of [0,1]")
    (fun () -> ignore (Hdr.quantile h 1.5 : float))

let test_hdr_constant_memory () =
  let h = Hdr.create () in
  for i = 1 to 100_000 do
    Hdr.record h (float_of_int (i mod 1000))
  done;
  let buckets = Hdr.bucket_count h in
  for i = 1 to 100_000 do
    Hdr.record h (float_of_int (i mod 1000))
  done;
  Alcotest.(check int) "bucket count independent of observations" buckets
    (Hdr.bucket_count h);
  Alcotest.(check int) "all recorded" 200_000 (Hdr.count h)

let test_hdr_cdf_points () =
  let h = Hdr.create () in
  List.iter (Hdr.record h) [ 1.0; 1.0; 2.0; 10.0 ];
  let pts = Hdr.cdf_points h in
  Alcotest.(check bool) "non-empty" true (List.length pts >= 3);
  let fracs = List.map snd pts in
  let rec mono = function a :: b :: r -> a <= b && mono (b :: r) | _ -> true in
  Alcotest.(check bool) "monotone" true (mono fracs);
  Alcotest.(check (float 1e-9)) "ends at 1" 1.0 (List.nth fracs (List.length fracs - 1))

(* Nearest-rank exact answer from the full sample: the ground truth the
   streaming histogram is allowed to be rel_error away from. *)
let exact_nearest_rank sorted q =
  let n = Array.length sorted in
  let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
  sorted.(rank - 1)

let hdr_values_gen =
  QCheck.(list_of_size Gen.(int_range 1 400) (float_range 0.0 50_000.0))

let test_hdr_quantile_accuracy =
  QCheck.Test.make ~name:"hdr quantile within rel_error of exact sample answer" ~count:200
    hdr_values_gen (fun xs ->
      let h = Hdr.create () in
      let s = Stats.Sample.create () in
      List.iter
        (fun x ->
          Hdr.record h x;
          Stats.Sample.add s x)
        xs;
      let sorted = Stats.Sample.sorted s in
      let eps = Hdr.rel_error h and quantum = Hdr.lowest h in
      List.for_all
        (fun q ->
          let exact = exact_nearest_rank sorted q in
          let got = Hdr.quantile h q in
          (* Relative bound from the bucket width plus an absolute slack
             of two quantization units (rounding to multiples of
             [lowest] can move a value across a bucket edge). *)
          Float.abs (got -. exact) <= (eps *. exact) +. (2.0 *. quantum))
        [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ])

let test_hdr_merge_is_concat =
  QCheck.Test.make ~name:"hdr merge a b == recording the concatenated stream" ~count:100
    QCheck.(pair hdr_values_gen hdr_values_gen)
    (fun (xs, ys) ->
      let ha = Hdr.create () and hb = Hdr.create () and hc = Hdr.create () in
      List.iter (Hdr.record ha) xs;
      List.iter (Hdr.record hb) ys;
      List.iter (Hdr.record hc) (xs @ ys);
      let m = Hdr.merge ha hb in
      Hdr.count m = Hdr.count hc
      && Float.equal (Hdr.min m) (Hdr.min hc)
      && Float.equal (Hdr.max m) (Hdr.max hc)
      && List.for_all
           (fun q -> Float.equal (Hdr.quantile m q) (Hdr.quantile hc q))
           [ 0.0; 0.1; 0.5; 0.9; 0.99; 1.0 ]
      (* Bucket-wise equality, via the CDF: same counts in same buckets. *)
      && Hdr.cdf_points m = Hdr.cdf_points hc)

let test_hdr_merge_layout_mismatch () =
  let a = Hdr.create ~rel_error:0.01 () and b = Hdr.create ~rel_error:0.1 () in
  Alcotest.check_raises "layout mismatch"
    (Invalid_argument "Hdr.merge: histograms have different bucket layouts") (fun () ->
      ignore (Hdr.merge a b : Hdr.t))

(* ------------------------------------------------------------------ *)
(* Timeseries: windowed aggregation over simulated time. *)

let test_timeseries_windows () =
  let ts = Timeseries.create ~window:(us 10.0) () in
  let ev at e = Timeseries.on_event ts ~at e in
  (* Window 0: [0, 10us). *)
  ev (us 1.0) (Trace.Soft_sched { id = 0; due = us 5.0 });
  ev (us 5.5) (Trace.Soft_fire { id = 0; due = us 5.0; delay = us 0.5 });
  ev (us 7.0) (Trace.Poll { found = 3 });
  (* Window 2: [20, 30us) — window 1 is simply absent (no events). *)
  ev (us 21.0) (Trace.Pkt_enqueue { nic = "nic0"; qlen = 4 });
  ev (us 22.0) (Trace.Pkt_rx { nic = "nic0"; batch = 2 });
  Timeseries.close ts;
  Alcotest.(check int) "events" 5 (Timeseries.event_count ts);
  Alcotest.(check int) "one epoch" 1 (Timeseries.epochs ts);
  match Timeseries.snapshots ts with
  | [ w0; w2 ] ->
    Alcotest.(check int) "w0 index" 0 w0.Timeseries.s_index;
    Alcotest.(check int) "w0 sched" 1 w0.Timeseries.s_sched;
    Alcotest.(check int) "w0 fired" 1 w0.Timeseries.s_fired;
    Alcotest.(check int) "w0 polls" 1 w0.Timeseries.s_polls;
    Alcotest.(check int) "w0 poll found" 3 w0.Timeseries.s_poll_found;
    Alcotest.(check (float 1e-6)) "w0 delay p50" 0.5 w0.Timeseries.s_delay_p50_us;
    Alcotest.(check int) "w2 index" 2 w2.Timeseries.s_index;
    Alcotest.(check int) "w2 enq" 1 w2.Timeseries.s_pkt_enqueued;
    Alcotest.(check int) "w2 rx pkts" 2 w2.Timeseries.s_pkt_rx_pkts;
    Alcotest.(check (option int)) "w2 qlen gauge" (Some 4) w2.Timeseries.s_qlen_last
  | l -> Alcotest.failf "expected 2 windows, got %d" (List.length l)

let test_timeseries_epoch_rollover () =
  let ts = Timeseries.create ~window:(us 10.0) () in
  Timeseries.on_event ts ~at:(us 55.0) (Trace.Poll { found = 0 });
  (* Simulated time jumps backwards: a fresh simulation started. *)
  Timeseries.on_event ts ~at:(us 3.0) (Trace.Poll { found = 0 });
  Timeseries.close ts;
  Alcotest.(check int) "two epochs" 2 (Timeseries.epochs ts);
  match Timeseries.snapshots ts with
  | [ a; b ] ->
    Alcotest.(check int) "epoch 0 window" 0 a.Timeseries.s_epoch;
    Alcotest.(check int) "epoch 1 window" 1 b.Timeseries.s_epoch;
    Alcotest.(check bool) "indices restart" true (b.Timeseries.s_index < a.Timeseries.s_index)
  | l -> Alcotest.failf "expected 2 windows, got %d" (List.length l)

let test_timeseries_bounded_ring () =
  let ts = Timeseries.create ~window:(us 1.0) ~max_windows:4 () in
  for i = 0 to 9 do
    Timeseries.on_event ts ~at:(us (float_of_int i)) (Trace.Poll { found = 0 })
  done;
  Timeseries.close ts;
  Alcotest.(check int) "evicted oldest" 6 (Timeseries.evicted_windows ts);
  let snaps = Timeseries.snapshots ts in
  Alcotest.(check int) "ring bounded" 4 (List.length snaps);
  Alcotest.(check int) "keeps newest" 9
    (List.nth snaps 3).Timeseries.s_index;
  (* The CSV export banners the eviction so truncation is never silent. *)
  let csv = Timeseries.to_csv ts in
  Alcotest.(check bool) "csv warns" true
    (String.length csv > 0 && csv.[0] = '#')

let test_timeseries_csv_json_shape () =
  let ts = Timeseries.create ~window:(us 10.0) () in
  Timeseries.on_event ts ~at:(us 1.0) (Trace.Soft_fire { id = 0; due = us 1.0; delay = Time_ns.zero });
  Timeseries.close ts;
  let csv = Timeseries.to_csv ts in
  (match String.split_on_char '\n' (String.trim csv) with
  | header :: rows ->
    let cols s = List.length (String.split_on_char ',' s) in
    Alcotest.(check int) "one row" 1 (List.length rows);
    List.iter
      (fun r -> Alcotest.(check int) "row arity matches header" (cols header) (cols r))
      rows
  | [] -> Alcotest.fail "empty csv");
  let json = Timeseries.to_json ts in
  Alcotest.(check bool) "json array" true
    (String.length json >= 2 && json.[0] = '[' && json.[String.length json - 1] = ']')

(* ------------------------------------------------------------------ *)
(* Span: async lifecycles recovered from the trace ring. *)

let test_span_timers_and_packets () =
  with_trace (fun tr ->
      Trace.soft_sched ~at:(us 1.0) ~id:0 ~due:(us 5.0);
      Trace.soft_sched ~at:(us 2.0) ~id:1 ~due:(us 5.0);
      Trace.soft_sched ~at:(us 3.0) ~id:2 ~due:(us 9.0);
      (* FIFO per due time: the fire at due=5 closes the span opened at 1us. *)
      Trace.soft_fire ~at:(us 6.0) ~id:0 ~due:(us 5.0);
      Trace.soft_cancel ~at:(us 7.0) ~id:1 ~due:(us 5.0);
      Trace.pkt_enqueue ~at:(us 1.0) ~nic:"nic0" ~qlen:1;
      Trace.pkt_enqueue ~at:(us 2.0) ~nic:"nic0" ~qlen:2;
      Trace.pkt_drop ~at:(us 2.5) ~nic:"nic0";
      Trace.pkt_rx ~at:(us 4.0) ~nic:"nic0" ~batch:2;
      let sp = Span.collect tr in
      Alcotest.(check int) "timers total" 3 (Span.timers_total sp);
      Alcotest.(check int) "timers fired" 1 (Span.timers_fired sp);
      Alcotest.(check int) "timers cancelled" 1 (Span.timers_cancelled sp);
      Alcotest.(check int) "timers open" 1 (Span.timers_open sp);
      Alcotest.(check int) "packets total (drop opens nothing)" 2 (Span.packets_total sp);
      Alcotest.(check int) "packets delivered" 2 (Span.packets_delivered sp);
      Alcotest.(check int) "packets open" 0 (Span.packets_open sp);
      Alcotest.(check int) "one fired latency" 1 (Hdr.count (Span.timer_latency sp));
      Alcotest.(check (float 0.05)) "sched->fire latency us" 5.0
        (Hdr.quantile (Span.timer_latency sp) 0.5);
      Alcotest.(check int) "two delivery latencies" 2 (Hdr.count (Span.packet_latency sp));
      (* Ids are assigned in stream order of the opening event. *)
      let ids = List.map (fun s -> s.Span.id) (Span.spans sp) in
      Alcotest.(check (list int)) "ids in stream order" [ 0; 1; 2; 3; 4 ] ids)

let test_span_epoch_reset () =
  with_trace (fun tr ->
      Trace.soft_sched ~at:(us 1.0) ~id:0 ~due:(us 5.0);
      (* A fresh simulation begins: the old open span must stay open. *)
      Trace.sim_start ~at:Time_ns.zero;
      Trace.soft_fire ~at:(us 5.0) ~id:0 ~due:(us 5.0);
      let sp = Span.collect tr in
      Alcotest.(check int) "old span stays open" 1 (Span.timers_open sp);
      Alcotest.(check int) "new run's fire closes nothing" 0 (Span.timers_fired sp))

(* Regression for the documented tie-break rule (span.mli): two timers
   scheduled for the *same* due time are closed in schedule order —
   the FIFO tie-break is the dispatch tie-break.  Referenced from
   span.mli as [test/test_obs.ml:span_fifo_tie]. *)
let test_span_fifo_tie () =
  with_trace (fun tr ->
      Trace.soft_sched ~at:(us 1.0) ~id:10 ~due:(us 5.0);
      Trace.soft_sched ~at:(us 2.0) ~id:11 ~due:(us 5.0);
      (* The stores dispatch equal deadlines in schedule order, so the
         first fire is timer 10 — it must close the span opened at 1us,
         and the second the span opened at 2us. *)
      Trace.soft_fire ~at:(us 6.0) ~id:10 ~due:(us 5.0);
      Trace.soft_fire ~at:(us 6.5) ~id:11 ~due:(us 5.0);
      let sp = Span.collect tr in
      match Span.spans sp with
      | [ s0; s1 ] ->
        Alcotest.(check int64) "first span opened at 1us" (us 1.0) s0.Span.start;
        Alcotest.(check (option int64)) "first span closed by first fire" (Some (us 6.0))
          s0.Span.finish;
        Alcotest.(check int64) "second span opened at 2us" (us 2.0) s1.Span.start;
        Alcotest.(check (option int64)) "second span closed by second fire" (Some (us 6.5))
          s1.Span.finish;
        Alcotest.(check int) "both fired" 2 (Span.timers_fired sp)
      | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l))

(* ------------------------------------------------------------------ *)
(* Delay_audit: fire-delay attribution. *)

(* Golden partition on a hand-built stream: a timer due at 10us is held
   off by user work until a check at 25us scans-but-skips it (budget),
   then kernel work runs and a syscall check fires it at 30us.  The
   20us delay must split exactly into 15us gap.user + 5us
   check-skipped. *)
let test_delay_audit_partition () =
  let da = Delay_audit.create ~worst:5 () in
  let ev at e = Delay_audit.on_event da ~at e in
  ev (us 0.0) (Trace.Soft_sched { id = 0; due = us 10.0 });
  ev (us 25.0) (Trace.Cpu_run { cpu = 0; klass = 3; dur = us 20.0 });
  ev (us 25.0) (Trace.Soft_check { src = "syscalls"; scanned = 1; fired = 0 });
  ev (us 30.0) (Trace.Cpu_run { cpu = 0; klass = 2; dur = us 5.0 });
  ev (us 30.0) (Trace.Trigger "syscalls");
  ev (us 30.0) (Trace.Soft_fire { id = 0; due = us 10.0; delay = us 20.0 });
  ev (us 30.0) (Trace.Soft_check { src = "syscalls"; scanned = 1; fired = 1 });
  Alcotest.(check int) "one late fire" 1 (Delay_audit.late da);
  Alcotest.(check int) "no violations" 0 (Delay_audit.violations da);
  Alcotest.(check int64) "gap.user 15us" (us 15.0) (Delay_audit.cause_ns da 3);
  Alcotest.(check int64) "check-skipped 5us" (us 5.0)
    (Delay_audit.cause_ns da Delay_audit.seg_check_skipped);
  Alcotest.(check int64) "partition is total" (us 20.0) (Delay_audit.total_late_ns da);
  match Delay_audit.exemplars da with
  | [ x ] ->
    Alcotest.(check int) "exemplar id" 0 x.Delay_audit.x_id;
    Alcotest.(check int64) "exemplar delay" (us 20.0) x.Delay_audit.x_delay;
    Alcotest.(check string) "ending trigger" "syscalls" x.Delay_audit.x_end_trigger;
    Alcotest.(check int) "batch position" 1 x.Delay_audit.x_batch_pos;
    Alcotest.(check int) "one skipping check" 1 x.Delay_audit.x_checks;
    Alcotest.(check (option int64)) "first check at 25us" (Some (us 25.0))
      x.Delay_audit.x_first_check;
    Alcotest.(check int64) "segments sum to delay" x.Delay_audit.x_delay
      (Array.fold_left Int64.add 0L x.Delay_audit.x_segs)
  | l -> Alcotest.failf "expected 1 exemplar, got %d" (List.length l)

(* Idle-before-wakeup: a timer that comes due while the CPU sleeps is
   charged to seg_idle for the whole [due, wakeup) stretch. *)
let test_delay_audit_idle () =
  let da = Delay_audit.create () in
  let ev at e = Delay_audit.on_event da ~at e in
  ev (us 0.0) (Trace.Soft_sched { id = 7; due = us 10.0 });
  ev (us 5.0) (Trace.Cpu_idle { cpu = 0 });
  ev (us 30.0) (Trace.Cpu_busy { cpu = 0 });
  ev (us 30.0) (Trace.Trigger "idle");
  ev (us 30.0) (Trace.Soft_fire { id = 7; due = us 10.0; delay = us 20.0 });
  ev (us 30.0) (Trace.Soft_check { src = "idle"; scanned = 1; fired = 1 });
  Alcotest.(check int) "no violations" 0 (Delay_audit.violations da);
  Alcotest.(check int64) "all idle" (us 20.0) (Delay_audit.cause_ns da Delay_audit.seg_idle);
  Alcotest.(check int64) "nothing uncovered" 0L (Delay_audit.cause_ns da Delay_audit.seg_other)

(* Golden text report on a pinned two-timer stream: the partition
   stream above plus an idle-wakeup timer whose [due, idle-start) hole
   has no CPU-0 coverage and must land in gap.other (conservation by
   construction).  Pinning the full rendering keeps the report format,
   column math (shares, averages, causal-chain ordering) and the
   worst-ordering contract from drifting silently. *)
let test_delay_audit_golden_text () =
  let da = Delay_audit.create ~worst:5 () in
  let ev at e = Delay_audit.on_event da ~at e in
  ev (us 0.0) (Trace.Soft_sched { id = 0; due = us 10.0 });
  ev (us 25.0) (Trace.Cpu_run { cpu = 0; klass = 3; dur = us 20.0 });
  ev (us 25.0) (Trace.Soft_check { src = "syscalls"; scanned = 1; fired = 0 });
  ev (us 30.0) (Trace.Cpu_run { cpu = 0; klass = 2; dur = us 5.0 });
  ev (us 30.0) (Trace.Trigger "syscalls");
  ev (us 30.0) (Trace.Soft_fire { id = 0; due = us 10.0; delay = us 20.0 });
  ev (us 30.0) (Trace.Soft_check { src = "syscalls"; scanned = 1; fired = 1 });
  ev (us 31.0) (Trace.Soft_sched { id = 1; due = us 40.0 });
  ev (us 45.0) (Trace.Cpu_idle { cpu = 0 });
  ev (us 50.0) (Trace.Cpu_busy { cpu = 0 });
  ev (us 50.0) (Trace.Trigger "idle");
  ev (us 50.0) (Trace.Soft_fire { id = 1; due = us 40.0; delay = us 10.0 });
  ev (us 50.0) (Trace.Soft_check { src = "idle"; scanned = 1; fired = 1 });
  let expected =
    String.concat "\n"
      [
        "Why-late: fire-delay attribution";
        "  fired 2 (on-time 0, late 2), untracked 0, pending at exit 0";
        "  checks seen 3 (budget-limited 1), conservation violations 0";
        "";
        "Cause breakdown (2 late fires, 0.030 ms attributed)";
        "  cause                  total_us   share     fires    p50_us    p99_us";
        "  gap.user                   15.0   50.0%         1      15.0      15.0  (user-mode computation)";
        "  gap.idle                    5.0   16.7%         1       5.0       5.0  (CPU idle before wakeup)";
        "  gap.other                   5.0   16.7%         1       5.0       5.0  (uncovered (other CPU / truncated trace))";
        "  check-skipped               5.0   16.7%         1       5.0       5.0  (check ran but dispatch budget skipped this timer)";
        "";
        "Ending trigger state (which check finally dispatched the late timer)";
        "  trigger        fires     delay_us    avg_us  dominant cause";
        "  idle               1         10.0      10.0  gap.idle";
        "  syscalls           1         20.0      20.0  gap.user";
        "";
        "Worst 2 late fires";
        "  timer          due_us   delay_us end_trigger   batch  skips   1st_chk_us  causal chain";
        "  0                10.0       20.0 syscalls          1      1         25.0  gap.user=15.0us -> check-skipped=5.0us";
        "  1                40.0       10.0 idle              1      0            -  gap.idle=5.0us -> gap.other=5.0us";
        "";
      ]
  in
  Alcotest.(check string) "pinned why-late report" expected (Delay_audit.to_text da)

(* On-time fires attribute nothing; cancels drop tracking; a sim.start
   reset counts survivors as pending_at_exit. *)
let test_delay_audit_lifecycle () =
  let da = Delay_audit.create () in
  let ev at e = Delay_audit.on_event da ~at e in
  ev (us 0.0) (Trace.Soft_sched { id = 0; due = us 10.0 });
  ev (us 10.0) (Trace.Soft_fire { id = 0; due = us 10.0; delay = 0L });
  ev (us 11.0) (Trace.Soft_sched { id = 1; due = us 20.0 });
  ev (us 12.0) (Trace.Soft_cancel { id = 1; due = us 20.0 });
  ev (us 13.0) (Trace.Soft_sched { id = 2; due = us 50.0 });
  ev (us 14.0) (Trace.Soft_sched { id = 3; due = us 60.0 });
  ev (us 15.0) (Trace.Mark Trace.sim_start_mark);
  ev (us 1.0) (Trace.Soft_sched { id = 0; due = us 90.0 });
  Alcotest.(check int) "one on-time fire" 1 (Delay_audit.ontime da);
  Alcotest.(check int) "no late fires" 0 (Delay_audit.late da);
  Alcotest.(check int) "abandoned + still pending" 3 (Delay_audit.pending_at_exit da);
  Alcotest.(check int64) "nothing attributed" 0L (Delay_audit.total_late_ns da)

(* ------------------------------------------------------------------ *)
(* Exporters. *)

let test_export_chrome_json () =
  with_trace (fun tr ->
      Trace.trigger ~at:(us 1.0) "syscall";
      Trace.irq ~at:(us 10.0) ~line:"nic0" ~cpu:0 ~dur:(us 4.0);
      Trace.cpu_idle ~at:(us 12.0) ~cpu:0;
      Trace.mark ~at:(us 13.0) "quote\"and\\slash";
      let json = Trace_export.to_chrome_json tr in
      Alcotest.(check bool) "has traceEvents" true
        (String.length json > 0 && json.[0] = '{');
      let contains needle =
        let n = String.length needle and m = String.length json in
        let rec go i = i + n <= m && (String.sub json i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "metadata record" true (contains "process_name");
      Alcotest.(check bool) "instant trigger" true (contains "\"name\":\"syscall\"");
      (* The irq slice starts at handler entry: 10us - 4us = 6us. *)
      Alcotest.(check bool) "irq complete slice" true
        (contains "\"ph\":\"X\",\"ts\":6.000");
      Alcotest.(check bool) "cpu counter track" true (contains "\"cpu0.busy\"");
      Alcotest.(check bool) "escaped quote" true (contains "quote\\\"and\\\\slash");
      (* Balanced braces/brackets is a cheap well-formedness smoke test;
         the CI trace-smoke target runs a real JSON parser over a full
         experiment's trace. *)
      let depth = ref 0 in
      String.iter
        (fun c ->
          match c with
          | '{' | '[' -> incr depth
          | '}' | ']' -> decr depth
          | _ -> ())
        json;
      Alcotest.(check int) "balanced nesting" 0 !depth)

let test_export_csv () =
  with_trace (fun tr ->
      Trace.soft_sched ~at:(us 1.0) ~id:0 ~due:(us 5.0);
      Trace.soft_fire ~at:(us 6.0) ~id:0 ~due:(us 5.0);
      let csv = Trace_export.to_csv tr in
      let lines = String.split_on_char '\n' (String.trim csv) in
      Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
      Alcotest.(check string) "header" "time_ns,event,detail" (List.hd lines);
      Alcotest.(check string) "sched row" "1000,soft-sched,timer=0;due_ns=5000" (List.nth lines 1);
      Alcotest.(check string) "fire row carries delay" "6000,soft-fire,timer=0;due_ns=5000;delay_ns=1000"
        (List.nth lines 2))

(* Golden shape test for the extended Chrome export: counter tracks
   (cat "timeseries") and async span events (cat "span") interleave
   with the existing instant/complete events, the stream stays
   structurally valid, and the trace.dropped banner is preserved. *)
let test_export_chrome_extended () =
  with_trace (fun tr ->
      let ts = Timeseries.create ~window:(us 10.0) () in
      Trace.set_tap (Some (Timeseries.on_event ts));
      Fun.protect
        ~finally:(fun () -> Trace.set_tap None)
        (fun () ->
          Trace.trigger ~at:(us 1.0) "syscall";
          Trace.soft_sched ~at:(us 2.0) ~id:0 ~due:(us 8.0);
          Trace.irq ~at:(us 5.0) ~line:"nic0" ~cpu:0 ~dur:(us 1.0);
          Trace.soft_fire ~at:(us 8.5) ~id:0 ~due:(us 8.0);
          Trace.pkt_enqueue ~at:(us 11.0) ~nic:"nic0" ~qlen:1;
          Trace.pkt_rx ~at:(us 13.0) ~nic:"nic0" ~batch:1);
      Timeseries.close ts;
      let sp = Span.collect tr in
      let json = Trace_export.to_chrome_json ~series:ts ~spans:sp tr in
      let count needle =
        let n = String.length needle and m = String.length json in
        let rec go acc i =
          if i + n > m then acc
          else go (if String.sub json i n = needle then acc + 1 else acc) (i + 1)
        in
        go 0 0
      in
      Alcotest.(check bool) "existing instant events kept" true (count "\"ph\":\"i\"" > 0);
      Alcotest.(check bool) "existing complete slices kept" true (count "\"ph\":\"X\"" > 0);
      Alcotest.(check bool) "counter tracks present" true
        (count "\"cat\":\"timeseries\",\"ph\":\"C\"" >= 2);
      Alcotest.(check bool) "span cat present" true (count "\"cat\":\"span\"" > 0);
      (* Both the timer and the packet lifecycle closed, so two b/e pairs;
         async begins and ends always balance. *)
      Alcotest.(check int) "async begins" 2 (count "\"ph\":\"b\"");
      Alcotest.(check int) "async ends balance" (count "\"ph\":\"b\"") (count "\"ph\":\"e\"");
      Alcotest.(check bool) "span ids stamped" true (count "\"id\":" >= 4);
      Alcotest.(check bool) "no drops, no banner" false (count "droppedEvents" > 0);
      let depth = ref 0 and ok = ref true in
      String.iter
        (fun c ->
          match c with
          | '{' | '[' -> incr depth
          | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
          | _ -> ())
        json;
      Alcotest.(check bool) "balanced nesting" true (!ok && !depth = 0))

let test_export_chrome_dropped_banner () =
  with_trace ~capacity:4 (fun tr ->
      for i = 1 to 10 do
        Trace.soft_sched ~at:(us (float_of_int i)) ~id:i ~due:(us (float_of_int (i + 5)))
      done;
      let sp = Span.collect tr in
      let json = Trace_export.to_chrome_json ~spans:sp tr in
      let contains needle =
        let n = String.length needle and m = String.length json in
        let rec go i = i + n <= m && (String.sub json i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "dropped banner preserved with overlays" true
        (contains "\"droppedEvents\":6"))

let qc = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "disabled emitters are no-ops" `Quick test_trace_disabled_is_noop;
          Alcotest.test_case "basic record/readback" `Quick test_trace_basic;
          Alcotest.test_case "ring wraparound" `Quick test_trace_wraparound;
          Alcotest.test_case "invalid capacity" `Quick test_trace_invalid_capacity;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters get-or-create" `Quick test_metrics_counters;
          Alcotest.test_case "gauges and probes" `Quick test_metrics_gauges_probes;
          Alcotest.test_case "reset keeps instruments live" `Quick test_metrics_reset;
          Alcotest.test_case "reset keeps probes" `Quick test_metrics_reset_keeps_probes;
          Alcotest.test_case "prometheus exposition" `Quick test_metrics_prometheus;
        ] );
      ( "hdr",
        [
          Alcotest.test_case "basics" `Quick test_hdr_basics;
          Alcotest.test_case "constant memory" `Quick test_hdr_constant_memory;
          Alcotest.test_case "cdf points" `Quick test_hdr_cdf_points;
          Alcotest.test_case "merge layout mismatch" `Quick test_hdr_merge_layout_mismatch;
          qc test_hdr_quantile_accuracy;
          qc test_hdr_merge_is_concat;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "windowing" `Quick test_timeseries_windows;
          Alcotest.test_case "epoch rollover" `Quick test_timeseries_epoch_rollover;
          Alcotest.test_case "bounded ring" `Quick test_timeseries_bounded_ring;
          Alcotest.test_case "csv/json shape" `Quick test_timeseries_csv_json_shape;
        ] );
      ( "span",
        [
          Alcotest.test_case "timers and packets" `Quick test_span_timers_and_packets;
          Alcotest.test_case "epoch reset" `Quick test_span_epoch_reset;
          Alcotest.test_case "span_fifo_tie" `Quick test_span_fifo_tie;
        ] );
      ( "delay_audit",
        [
          Alcotest.test_case "golden partition" `Quick test_delay_audit_partition;
          Alcotest.test_case "golden text report" `Quick test_delay_audit_golden_text;
          Alcotest.test_case "idle before wakeup" `Quick test_delay_audit_idle;
          Alcotest.test_case "lifecycle accounting" `Quick test_delay_audit_lifecycle;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace_event json" `Quick test_export_chrome_json;
          Alcotest.test_case "csv" `Quick test_export_csv;
          Alcotest.test_case "chrome extended (counters + spans)" `Quick
            test_export_chrome_extended;
          Alcotest.test_case "dropped banner with overlays" `Quick
            test_export_chrome_dropped_banner;
        ] );
    ]
