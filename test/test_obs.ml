(* Tests for the observability layer (lib/obs): the trace ring buffer,
   the metrics registry, and the exporters. *)

let us = Time_ns.of_us

(* ------------------------------------------------------------------ *)
(* Trace ring buffer. *)

let with_trace ?capacity f =
  let tr = Trace.create ?capacity () in
  Trace.install tr;
  Fun.protect ~finally:Trace.uninstall (fun () -> f tr)

let event_names tr =
  List.map
    (fun { Trace.ev; _ } ->
      match ev with
      | Trace.Mark s -> s
      | Trace.Trigger k -> "trigger:" ^ k
      | _ -> "other")
    (Trace.to_list tr)

let test_trace_disabled_is_noop () =
  Alcotest.(check bool) "disabled at start" false (Trace.enabled ());
  (* Emitting with no sink installed must simply do nothing. *)
  Trace.mark ~at:Time_ns.zero "ignored";
  Trace.trigger ~at:Time_ns.zero "syscall";
  Alcotest.(check bool) "still disabled" false (Trace.enabled ())

let test_trace_basic () =
  with_trace (fun tr ->
      Alcotest.(check bool) "enabled" true (Trace.enabled ());
      Trace.mark ~at:(us 1.0) "a";
      Trace.mark ~at:(us 2.0) "b";
      Alcotest.(check int) "length" 2 (Trace.length tr);
      Alcotest.(check int) "dropped" 0 (Trace.dropped tr);
      Alcotest.(check (list string)) "oldest first" [ "a"; "b" ] (event_names tr);
      Trace.clear tr;
      Alcotest.(check int) "cleared" 0 (Trace.length tr));
  Alcotest.(check bool) "uninstalled after" false (Trace.enabled ())

let test_trace_wraparound () =
  with_trace ~capacity:4 (fun tr ->
      for i = 1 to 10 do
        Trace.mark ~at:(us (float_of_int i)) (string_of_int i)
      done;
      Alcotest.(check int) "length capped" 4 (Trace.length tr);
      Alcotest.(check int) "dropped counts overwrites" 6 (Trace.dropped tr);
      Alcotest.(check int) "total" 10 (Trace.total tr);
      Alcotest.(check (list string)) "keeps the newest, oldest first" [ "7"; "8"; "9"; "10" ]
        (event_names tr))

let test_trace_invalid_capacity () =
  Alcotest.check_raises "capacity<=0"
    (Invalid_argument "Trace.create: capacity must be positive") (fun () ->
      ignore (Trace.create ~capacity:0 () : Trace.t))

(* ------------------------------------------------------------------ *)
(* Metrics registry. *)

let test_metrics_counters () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a.b" in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  Alcotest.(check int) "counted" 42 (Metrics.counter_value c);
  (* Get-or-create: the same name is the same instrument. *)
  let c' = Metrics.counter m "a.b" in
  Metrics.incr c';
  Alcotest.(check int) "aliased" 43 (Metrics.counter_value c);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics: \"a.b\" is a counter, not a gauge") (fun () ->
      ignore (Metrics.gauge m "a.b" : Metrics.gauge))

let test_metrics_gauges_probes () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "g" in
  Alcotest.(check bool) "nan before set" true (Float.is_nan (Metrics.gauge_value g));
  Metrics.set_gauge g 2.5;
  Alcotest.(check (float 0.0)) "gauge" 2.5 (Metrics.gauge_value g);
  Metrics.probe m "p" (fun () -> 7.0);
  let seen = ref [] in
  Metrics.iter m (fun name v -> seen := (name, v) :: !seen);
  Alcotest.(check (list string)) "name-sorted iteration" [ "g"; "p" ]
    (List.rev_map fst !seen)

let test_metrics_reset () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  let g = Metrics.gauge m "g" in
  let h = Metrics.histogram m "h" in
  Metrics.incr ~by:5 c;
  Metrics.set_gauge g 1.0;
  Stats.Sample.add h 3.0;
  Metrics.reset m;
  (* Instruments held by registration sites stay valid after reset. *)
  Alcotest.(check int) "counter zeroed" 0 (Metrics.counter_value c);
  Alcotest.(check bool) "gauge cleared" true (Float.is_nan (Metrics.gauge_value g));
  Alcotest.(check int) "histogram emptied" 0 (Stats.Sample.count h);
  Metrics.incr c;
  Alcotest.(check int) "still wired to the registry" 1
    (Metrics.counter_value (Metrics.counter m "c"))

let test_metrics_sampling_flag () =
  Alcotest.(check bool) "off by default" false (Metrics.sampling ());
  Metrics.set_sampling true;
  Alcotest.(check bool) "on" true (Metrics.sampling ());
  Metrics.set_sampling false

(* ------------------------------------------------------------------ *)
(* Exporters. *)

let test_export_chrome_json () =
  with_trace (fun tr ->
      Trace.trigger ~at:(us 1.0) "syscall";
      Trace.irq ~at:(us 10.0) ~line:"nic0" ~cpu:0 ~dur:(us 4.0);
      Trace.cpu_idle ~at:(us 12.0) ~cpu:0;
      Trace.mark ~at:(us 13.0) "quote\"and\\slash";
      let json = Trace_export.to_chrome_json tr in
      Alcotest.(check bool) "has traceEvents" true
        (String.length json > 0 && json.[0] = '{');
      let contains needle =
        let n = String.length needle and m = String.length json in
        let rec go i = i + n <= m && (String.sub json i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "metadata record" true (contains "process_name");
      Alcotest.(check bool) "instant trigger" true (contains "\"name\":\"syscall\"");
      (* The irq slice starts at handler entry: 10us - 4us = 6us. *)
      Alcotest.(check bool) "irq complete slice" true
        (contains "\"ph\":\"X\",\"ts\":6.000");
      Alcotest.(check bool) "cpu counter track" true (contains "\"cpu0.busy\"");
      Alcotest.(check bool) "escaped quote" true (contains "quote\\\"and\\\\slash");
      (* Balanced braces/brackets is a cheap well-formedness smoke test;
         the CI trace-smoke target runs a real JSON parser over a full
         experiment's trace. *)
      let depth = ref 0 in
      String.iter
        (fun c ->
          match c with
          | '{' | '[' -> incr depth
          | '}' | ']' -> decr depth
          | _ -> ())
        json;
      Alcotest.(check int) "balanced nesting" 0 !depth)

let test_export_csv () =
  with_trace (fun tr ->
      Trace.soft_sched ~at:(us 1.0) ~due:(us 5.0);
      Trace.soft_fire ~at:(us 6.0) ~due:(us 5.0);
      let csv = Trace_export.to_csv tr in
      let lines = String.split_on_char '\n' (String.trim csv) in
      Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
      Alcotest.(check string) "header" "time_ns,event,detail" (List.hd lines);
      Alcotest.(check string) "sched row" "1000,soft-sched,due_ns=5000" (List.nth lines 1);
      Alcotest.(check string) "fire row carries delay" "6000,soft-fire,due_ns=5000;delay_ns=1000"
        (List.nth lines 2))

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "disabled emitters are no-ops" `Quick test_trace_disabled_is_noop;
          Alcotest.test_case "basic record/readback" `Quick test_trace_basic;
          Alcotest.test_case "ring wraparound" `Quick test_trace_wraparound;
          Alcotest.test_case "invalid capacity" `Quick test_trace_invalid_capacity;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters get-or-create" `Quick test_metrics_counters;
          Alcotest.test_case "gauges and probes" `Quick test_metrics_gauges_probes;
          Alcotest.test_case "reset keeps instruments live" `Quick test_metrics_reset;
          Alcotest.test_case "sampling flag" `Quick test_metrics_sampling_flag;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace_event json" `Quick test_export_chrome_json;
          Alcotest.test_case "csv" `Quick test_export_csv;
        ] );
    ]
