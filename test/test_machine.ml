(* Tests for the machine layer: CPU scheduling and preemption, interrupt
   controller (latching, spl windows, pollution costs), trigger-state
   dispatch, kernel scripts and the periodic clock. *)

let us = Time_ns.of_us

let fresh () =
  let e = Engine.create () in
  let m = Machine.create e in
  (e, m)

(* ------------------------------------------------------------------ *)
(* Cpu *)

let test_cpu_runs_in_priority_order () =
  let e = Engine.create () in
  let cpu = Cpu.create e in
  let log = ref [] in
  let submit prio tag =
    Cpu.submit cpu ~prio ~work:(us 10.0) (fun _ -> log := tag :: !log)
  in
  (* "first" (kernel, preemptible) starts; the softintr submission
     preempts it; then priority order drains the rest. *)
  submit Cpu.prio_kernel "first";
  submit Cpu.prio_user "user";
  submit Cpu.prio_softintr "softintr";
  submit Cpu.prio_background "bg";
  Engine.run e;
  Alcotest.(check (list string)) "preemption then priority order"
    [ "softintr"; "first"; "user"; "bg" ]
    (List.rev !log)

let test_cpu_intr_preempts_user () =
  let e = Engine.create () in
  let cpu = Cpu.create e in
  let finish = Hashtbl.create 4 in
  Cpu.submit cpu ~prio:Cpu.prio_user ~work:(us 100.0) (fun t -> Hashtbl.add finish "user" t);
  (* Arrives mid-way through the user quantum; must preempt. *)
  ignore
    (Engine.schedule_at e (us 30.0) (fun () ->
         Cpu.submit cpu ~prio:Cpu.prio_intr ~work:(us 5.0) (fun t -> Hashtbl.add finish "intr" t))
      : Engine.handle);
  Engine.run e;
  Alcotest.(check int64) "interrupt done at 35us" (us 35.0) (Hashtbl.find finish "intr");
  Alcotest.(check int64) "user resumed, done at 105us" (us 105.0) (Hashtbl.find finish "user")

let test_cpu_intr_does_not_preempt_softintr () =
  let e = Engine.create () in
  let cpu = Cpu.create e in
  let finish = Hashtbl.create 4 in
  Cpu.submit cpu ~prio:Cpu.prio_softintr ~work:(us 50.0) (fun t -> Hashtbl.add finish "si" t);
  ignore
    (Engine.schedule_at e (us 10.0) (fun () ->
         Cpu.submit cpu ~prio:Cpu.prio_intr ~work:(us 5.0) (fun t -> Hashtbl.add finish "intr" t))
      : Engine.handle);
  Engine.run e;
  Alcotest.(check int64) "softintr runs to completion" (us 50.0) (Hashtbl.find finish "si");
  Alcotest.(check int64) "interrupt delayed until then" (us 55.0) (Hashtbl.find finish "intr")

let test_cpu_busy_accounting () =
  let e = Engine.create () in
  let cpu = Cpu.create e in
  Cpu.submit cpu ~prio:Cpu.prio_user ~work:(us 40.0) (fun _ -> ());
  ignore
    (Engine.schedule_at e (us 10.0) (fun () ->
         Cpu.submit cpu ~prio:Cpu.prio_intr ~work:(us 5.0) (fun _ -> ()))
      : Engine.handle);
  Engine.run e;
  Alcotest.(check int64) "total busy" (us 45.0) (Cpu.busy_ns cpu);
  Alcotest.(check int64) "user busy" (us 40.0) (Cpu.busy_ns_at cpu Cpu.prio_user);
  Alcotest.(check int64) "intr busy" (us 5.0) (Cpu.busy_ns_at cpu Cpu.prio_intr);
  Alcotest.(check bool) "idle at end" true (Cpu.is_idle cpu)

let test_cpu_idle_resume_hooks () =
  let e = Engine.create () in
  let cpu = Cpu.create e in
  let events = ref [] in
  Cpu.set_idle_hook cpu (fun t -> events := ("idle", t) :: !events);
  Cpu.set_resume_hook cpu (fun t -> events := ("resume", t) :: !events);
  ignore
    (Engine.schedule_at e (us 5.0) (fun () ->
         Cpu.submit cpu ~prio:Cpu.prio_user ~work:(us 10.0) (fun _ -> ()))
      : Engine.handle);
  Engine.run e;
  Alcotest.(check (list (pair string int64))) "resume then idle"
    [ ("resume", us 5.0); ("idle", us 15.0) ]
    (List.rev !events)

let test_cpu_preempted_callback_once () =
  let e = Engine.create () in
  let cpu = Cpu.create e in
  let calls = ref 0 in
  Cpu.submit cpu ~prio:Cpu.prio_user ~work:(us 100.0) (fun _ -> incr calls);
  (* Three interrupts during the quantum. *)
  List.iter
    (fun t ->
      ignore
        (Engine.schedule_at e (us t) (fun () ->
             Cpu.submit cpu ~prio:Cpu.prio_intr ~work:(us 2.0) (fun _ -> ()))
          : Engine.handle))
    [ 10.0; 40.0; 70.0 ];
  Engine.run e;
  Alcotest.(check int) "completion fires exactly once" 1 !calls;
  Alcotest.(check int64) "clock includes all work" (us 106.0) (Engine.now e)

let test_cpu_invalid_args () =
  let e = Engine.create () in
  let cpu = Cpu.create e in
  Alcotest.check_raises "bad priority" (Invalid_argument "Cpu.submit: bad priority") (fun () ->
      Cpu.submit cpu ~prio:99 ~work:1L (fun _ -> ()));
  Alcotest.check_raises "negative work" (Invalid_argument "Cpu.submit: negative work") (fun () ->
      Cpu.submit cpu ~prio:0 ~work:(-1L) (fun _ -> ()))

(* ------------------------------------------------------------------ *)
(* Interrupts *)

let test_interrupt_costs_charged () =
  let e, m = fresh () in
  let ln = Machine.interrupt_line m ~name:"dev" ~source:Trigger.Dev_intr ~handler:(fun _ -> ()) () in
  ignore (Machine.raise_irq m ln ~handler_work_us:2.0 () : bool);
  Engine.run e;
  (* P-II profile at neutral locality: 1.95 + 2.50 + 2.0 handler. *)
  Alcotest.(check int64) "cost = overhead + handler" (us 6.45) (Cpu.busy_ns (Machine.cpu m));
  Alcotest.(check int) "delivered" 1 (Interrupt.delivered ln);
  Alcotest.(check int) "trigger fired" 1 (Machine.trigger_count m Trigger.Dev_intr)

let test_interrupt_latch_limit () =
  let e, m = fresh () in
  let ln =
    Machine.interrupt_line m ~name:"dev" ~source:Trigger.Dev_intr ~latch_depth:2
      ~handler:(fun _ -> ())
      ()
  in
  (* Block the CPU so raised interrupts stay in flight. *)
  Cpu.submit (Machine.cpu m) ~prio:Cpu.prio_intr ~work:(us 50.0) (fun _ -> ());
  let r1 = Machine.raise_irq m ln () in
  let r2 = Machine.raise_irq m ln () in
  let r3 = Machine.raise_irq m ln () in
  Alcotest.(check (list bool)) "third is lost" [ true; true; false ] [ r1; r2; r3 ];
  Engine.run e;
  Alcotest.(check int) "raised" 3 (Interrupt.raised ln);
  Alcotest.(check int) "lost" 1 (Interrupt.lost ln);
  Alcotest.(check int) "delivered" 2 (Interrupt.delivered ln)

let test_interrupt_pollution_scales_with_locality () =
  let run locality =
    let e, m = fresh () in
    Machine.set_locality m locality;
    let ln = Machine.interrupt_line m ~name:"d" ~source:Trigger.Dev_intr ~handler:(fun _ -> ()) () in
    ignore (Machine.raise_irq m ln () : bool);
    Engine.run e;
    Cpu.busy_ns (Machine.cpu m)
  in
  let neutral = run Cache.neutral and flash = run Cache.flash in
  Alcotest.(check bool) "flash pays more per interrupt" true Time_ns.(flash > neutral)

let test_spl_windows_defer_and_lose () =
  let e, m = fresh () in
  let ln =
    Machine.interrupt_line m ~name:"pit" ~source:Trigger.Clock_tick ~latch_depth:1
      ~spl_blockable:true
      ~handler:(fun _ -> ())
      ()
  in
  (* One long disabled window covering t in [gap, gap+duration). *)
  Machine.start_spl_sections m ~rate_per_sec:1.0 ~duration_us:(Dist.Constant 100.0) ~seed:1 ();
  (* The first window starts at an exponential gap; find it by raising
     every 10 us for 3 s and checking some ticks were lost. *)
  let raised = ref 0 in
  let rec tick () =
    if !raised < 300_000 then begin
      incr raised;
      ignore (Machine.raise_irq m ln () : bool);
      ignore (Engine.schedule_after e (us 10.0) tick : Engine.handle)
    end
  in
  tick ();
  Engine.run_until e (Time_ns.of_sec 3.0);
  Alcotest.(check bool) "some ticks lost in windows" true (Interrupt.lost ln > 0);
  Alcotest.(check bool) "most ticks delivered" true
    (Interrupt.delivered ln > 9 * Interrupt.raised ln / 10)

let test_cache_batch_cost () =
  let l = { Cache.sensitivity = 1.0; warm_fraction = 0.5 } in
  Alcotest.(check (float 1e-9)) "empty batch" 0.0 (Cache.batch_cost l ~per_packet_us:10.0 ~packets:0);
  Alcotest.(check (float 1e-9)) "single" 10.0 (Cache.batch_cost l ~per_packet_us:10.0 ~packets:1);
  Alcotest.(check (float 1e-9)) "warm follow-ons" 25.0 (Cache.batch_cost l ~per_packet_us:10.0 ~packets:4)

let test_costs_calibration () =
  Alcotest.(check (float 1e-9)) "P-II total 4.45us" 4.45
    (Costs.intr_total_us Costs.pentium_ii_300 ~locality:1.0);
  Alcotest.(check (float 1e-9)) "P-III total 4.36us" 4.36
    (Costs.intr_total_us Costs.pentium_iii_500 ~locality:1.0);
  Alcotest.(check (float 1e-9)) "Alpha total 8.64us" 8.64
    (Costs.intr_total_us Costs.alpha_21164_500 ~locality:1.0);
  Alcotest.(check (float 1e-9)) "scaling to 500MHz" 0.6 (Costs.scale_us Costs.pentium_iii_500 1.0)

(* ------------------------------------------------------------------ *)
(* Machine trigger dispatch and kernel scripts *)

let test_trigger_observers_and_counts () =
  let _, m = fresh () in
  let seen = ref [] in
  Machine.add_observer m (fun k _ -> seen := k :: !seen);
  Machine.fire_trigger m Trigger.Syscall;
  Machine.fire_trigger m Trigger.Trap;
  Machine.fire_trigger m Trigger.Syscall;
  Alcotest.(check int) "syscall count" 2 (Machine.trigger_count m Trigger.Syscall);
  Alcotest.(check int) "trap count" 1 (Machine.trigger_count m Trigger.Trap);
  Alcotest.(check int) "total" 3 (Machine.trigger_total m);
  Alcotest.(check int) "observer saw all" 3 (List.length !seen)

let test_check_hook_runs_at_triggers () =
  let e, m = fresh () in
  let checks = ref 0 in
  Machine.set_check_hook m (Some (fun _kind _now -> incr checks));
  Alcotest.(check bool) "attached" true (Machine.check_hook_attached m);
  Kernel.syscall m ~work_us:3.0 (fun _ -> ());
  Engine.run e;
  Alcotest.(check int) "hook ran" 1 !checks;
  Machine.set_check_hook m None;
  Kernel.syscall m ~work_us:3.0 (fun _ -> ());
  Engine.run e;
  Alcotest.(check int) "hook detached" 1 !checks

let test_kernel_entry_costs () =
  let e, m = fresh () in
  Kernel.syscall m ~work_us:5.0 (fun _ -> ());
  Engine.run e;
  (* syscall entry 1.10 + 5.0 body (300 MHz profile, scale 1.0) *)
  Alcotest.(check int64) "syscall cost" (us 6.1) (Cpu.busy_ns (Machine.cpu m));
  Alcotest.(check int) "syscall trigger" 1 (Machine.trigger_count m Trigger.Syscall)

let test_kernel_script_order () =
  let e, m = fresh () in
  let steps =
    [
      Kernel.step_user m ~work_us:10.0;
      Kernel.step_syscall ~work_us:2.0 m;
      Kernel.step_ip_output m;
      Kernel.step_tcp_timer m;
    ]
  in
  let done_at = ref Time_ns.zero in
  Kernel.run_script m steps (fun t -> done_at := t);
  Engine.run e;
  Alcotest.(check bool) "script completed" true Time_ns.(!done_at > Time_ns.zero);
  Alcotest.(check int) "ip-output trigger" 1 (Machine.trigger_count m Trigger.Ip_output);
  Alcotest.(check int) "tcpip trigger" 1 (Machine.trigger_count m Trigger.Tcpip_other);
  Alcotest.(check int) "syscall trigger" 1 (Machine.trigger_count m Trigger.Syscall)

let test_kernel_scaling_with_profile () =
  let e = Engine.create () in
  let m = Machine.create ~profile:Costs.pentium_iii_500 e in
  Kernel.user m ~work_us:100.0 (fun _ -> ());
  Engine.run e;
  (* 100 us of 300 MHz work takes 60 us at 500 MHz. *)
  Alcotest.(check int64) "user work rescaled" (us 60.0) (Cpu.busy_ns (Machine.cpu m))

let test_periodic_clock_ticks () =
  let e, m = fresh () in
  Machine.start_interrupt_clock m;
  Alcotest.(check bool) "running" true (Machine.interrupt_clock_running m);
  Machine.start_interrupt_clock m;  (* idempotent *)
  Engine.run_until e (Time_ns.of_ms 10.5);
  let ticks = Machine.trigger_count m Trigger.Clock_tick in
  Alcotest.(check bool) (Printf.sprintf "~10 ticks in 10.5ms (got %d)" ticks) true
    (ticks >= 9 && ticks <= 11)

let test_extra_timer_frequency () =
  let e, m = fresh () in
  let ln = Machine.add_periodic_timer m ~hz:100_000.0 (fun _ -> ()) in
  Engine.run_until e (Time_ns.of_ms 10.0);
  let delivered = Interrupt.delivered ln in
  Alcotest.(check bool) (Printf.sprintf "~1000 ticks in 10ms (got %d)" delivered) true
    (delivered >= 990 && delivered <= 1001)

let test_idle_poll_generates_triggers () =
  let e, m = fresh () in
  Machine.set_idle_poll m (Some (us 2.0));
  Engine.run_until e (Time_ns.of_ms 1.0);
  let idles = Machine.trigger_count m Trigger.Idle in
  Alcotest.(check bool) (Printf.sprintf "~500 idle polls (got %d)" idles) true
    (idles >= 450 && idles <= 510)

let test_idle_deadline_fires_exactly () =
  let e, m = fresh () in
  let deadline = us 123.0 in
  let armed = ref (Some deadline) in
  let fired_at = ref None in
  Machine.set_check_hook m
    (Some
       (fun _kind now ->
         match !armed with
         | Some d when Time_ns.(now >= d) ->
           armed := None;
           fired_at := Some now
         | _ -> ()));
  Machine.set_idle_deadline_fn m (Some (fun () -> !armed));
  Engine.run_until e (Time_ns.of_ms 1.0);
  Alcotest.(check (option int64)) "fires exactly at deadline while idle" (Some deadline) !fired_at

(* ------------------------------------------------------------------ *)
(* Multi-CPU (§5.2/§5.3) *)

let test_smp_parallel_execution () =
  let e = Engine.create () in
  let m = Machine.create ~cpus:2 e in
  let done_at = Hashtbl.create 2 in
  Machine.submit_quantum m ~cpu:0 ~prio:Cpu.prio_user ~work_us:100.0 ~trigger:None
    (fun t -> Hashtbl.add done_at "a" t);
  Machine.submit_quantum m ~cpu:1 ~prio:Cpu.prio_user ~work_us:100.0 ~trigger:None
    (fun t -> Hashtbl.add done_at "b" t);
  Engine.run e;
  Alcotest.(check int64) "a at 100us" (us 100.0) (Hashtbl.find done_at "a");
  Alcotest.(check int64) "b in parallel" (us 100.0) (Hashtbl.find done_at "b");
  Alcotest.(check int64) "busy sums both" (us 200.0) (Machine.total_busy_ns m);
  Alcotest.(check int) "cpu count" 2 (Machine.cpu_count m)

let test_smp_single_checker_polls () =
  (* Two idle CPUs must not double the idle-poll trigger rate. *)
  let rate cpus =
    let e = Engine.create () in
    let m = Machine.create ~cpus e in
    Machine.set_idle_poll m (Some (us 2.0));
    Engine.run_until e (Time_ns.of_ms 1.0);
    Machine.trigger_count m Trigger.Idle
  in
  let one = rate 1 and two = rate 2 in
  Alcotest.(check bool)
    (Printf.sprintf "same poll rate with 2 cpus (%d vs %d)" one two)
    true
    (abs (one - two) <= 2)

let test_smp_checker_handoff () =
  let e = Engine.create () in
  let m = Machine.create ~cpus:2 e in
  Machine.set_idle_poll m (Some (us 2.0));
  Alcotest.(check (option int)) "cpu0 checks first" (Some 0) (Machine.checking_cpu m);
  (* Busy work on CPU 0: the checker role must move to CPU 1. *)
  Machine.submit_quantum m ~cpu:0 ~prio:Cpu.prio_user ~work_us:500.0 ~trigger:None
    (fun _ -> ());
  Alcotest.(check (option int)) "handoff to cpu1" (Some 1) (Machine.checking_cpu m);
  Engine.run_until e (us 600.0);
  Alcotest.(check bool) "cpu0 idle again" true (Machine.any_cpu_idle m);
  Alcotest.(check bool) "a checker exists" true (Machine.checking_cpu m <> None);
  (* Polls continued throughout. *)
  Alcotest.(check bool) "polls continued" true (Machine.trigger_count m Trigger.Idle > 250)

let test_smp_no_checker_when_all_busy () =
  let e = Engine.create () in
  let m = Machine.create ~cpus:2 e in
  Machine.set_idle_poll m (Some (us 2.0));
  for cpu = 0 to 1 do
    Machine.submit_quantum m ~cpu ~prio:Cpu.prio_user ~work_us:300.0 ~trigger:None
      (fun _ -> ())
  done;
  Alcotest.(check (option int)) "nobody checks" None (Machine.checking_cpu m);
  Alcotest.(check bool) "no cpu idle" false (Machine.any_cpu_idle m);
  Engine.run_until e (us 400.0);
  Alcotest.(check bool) "checker back after work" true (Machine.checking_cpu m <> None)

let test_smp_interrupt_affinity () =
  let e = Engine.create () in
  let m = Machine.create ~cpus:2 e in
  let ln =
    Machine.interrupt_line m ~name:"dev1" ~source:Trigger.Dev_intr ~cpu:1
      ~handler:(fun _ -> ())
      ()
  in
  ignore (Machine.raise_irq m ln () : bool);
  Engine.run e;
  Alcotest.(check int64) "cpu0 untouched" 0L (Cpu.busy_ns (Machine.nth_cpu m 0));
  Alcotest.(check bool) "cpu1 paid" true Time_ns.(Cpu.busy_ns (Machine.nth_cpu m 1) > 0L)

let test_smp_invalid_args () =
  let e = Engine.create () in
  Alcotest.check_raises "zero cpus" (Invalid_argument "Machine.create: need at least one cpu")
    (fun () -> ignore (Machine.create ~cpus:0 e));
  let m = Machine.create ~cpus:2 e in
  Alcotest.check_raises "bad cpu index" (Invalid_argument "Machine.nth_cpu: bad index")
    (fun () -> ignore (Machine.nth_cpu m 2));
  Alcotest.check_raises "bad submit cpu" (Invalid_argument "Machine.submit_quantum: bad cpu")
    (fun () ->
      Machine.submit_quantum m ~cpu:5 ~prio:0 ~work_us:1.0 ~trigger:None (fun _ -> ()))

(* Property: the CPU conserves work -- whatever mix of priorities and
   arrival times, total busy time equals total submitted work, every
   callback fires exactly once, and the clock ends past the last
   completion. *)
let test_cpu_work_conservation =
  QCheck.Test.make ~name:"cpu conserves work" ~count:200
    QCheck.(
      list_of_size Gen.(int_range 1 40)
        (triple (int_range 0 4) (int_range 0 200) (int_range 0 500)))
    (fun jobs ->
      let e = Engine.create () in
      let cpu = Cpu.create e in
      let completions = ref 0 in
      let total = ref 0L in
      List.iter
        (fun (prio, work_us, at_us) ->
          let work = Time_ns.of_us (float_of_int work_us) in
          total := Int64.add !total work;
          ignore
            (Engine.schedule_at e
               (Time_ns.of_us (float_of_int at_us))
               (fun () -> Cpu.submit cpu ~prio ~work (fun _ -> incr completions))
              : Engine.handle))
        jobs;
      Engine.run e;
      !completions = List.length jobs
      && Int64.equal (Cpu.busy_ns cpu) !total
      && Cpu.is_idle cpu)

(* Property: engine events fire exactly once, in (time, insertion) order,
   and cancelled events never fire. *)
let test_engine_event_order_property =
  QCheck.Test.make ~name:"engine fires in order, cancels hold" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 60) (pair (int_range 0 1000) bool))
    (fun specs ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iteri
        (fun i (at_us, cancel) ->
          let h =
            Engine.schedule_at e
              (Time_ns.of_us (float_of_int at_us))
              (fun () -> fired := (at_us, i) :: !fired)
          in
          if cancel then Engine.cancel e h)
        specs;
      Engine.run e;
      let fired = List.rev !fired in
      let expected =
        specs
        |> List.mapi (fun i (at, c) -> (at, i, c))
        |> List.filter (fun (_, _, c) -> not c)
        |> List.map (fun (at, i, _) -> (at, i))
        |> List.sort compare
      in
      fired = expected)

let () =
  Alcotest.run "machine"
    [
      ( "cpu",
        [
          Alcotest.test_case "priority order" `Quick test_cpu_runs_in_priority_order;
          Alcotest.test_case "interrupt preempts user" `Quick test_cpu_intr_preempts_user;
          Alcotest.test_case "softintr not preempted" `Quick test_cpu_intr_does_not_preempt_softintr;
          Alcotest.test_case "busy accounting" `Quick test_cpu_busy_accounting;
          Alcotest.test_case "idle/resume hooks" `Quick test_cpu_idle_resume_hooks;
          Alcotest.test_case "preempted callback fires once" `Quick test_cpu_preempted_callback_once;
          Alcotest.test_case "invalid args" `Quick test_cpu_invalid_args;
          QCheck_alcotest.to_alcotest test_cpu_work_conservation;
          QCheck_alcotest.to_alcotest test_engine_event_order_property;
        ] );
      ( "interrupts",
        [
          Alcotest.test_case "costs charged" `Quick test_interrupt_costs_charged;
          Alcotest.test_case "latch limit" `Quick test_interrupt_latch_limit;
          Alcotest.test_case "pollution scales with locality" `Quick
            test_interrupt_pollution_scales_with_locality;
          Alcotest.test_case "spl windows defer and lose" `Quick test_spl_windows_defer_and_lose;
          Alcotest.test_case "batch cost" `Quick test_cache_batch_cost;
          Alcotest.test_case "cost calibration" `Quick test_costs_calibration;
        ] );
      ( "machine",
        [
          Alcotest.test_case "observers and counts" `Quick test_trigger_observers_and_counts;
          Alcotest.test_case "check hook" `Quick test_check_hook_runs_at_triggers;
          Alcotest.test_case "kernel entry costs" `Quick test_kernel_entry_costs;
          Alcotest.test_case "script order" `Quick test_kernel_script_order;
          Alcotest.test_case "profile scaling" `Quick test_kernel_scaling_with_profile;
          Alcotest.test_case "periodic clock" `Quick test_periodic_clock_ticks;
          Alcotest.test_case "extra timer frequency" `Quick test_extra_timer_frequency;
          Alcotest.test_case "idle poll triggers" `Quick test_idle_poll_generates_triggers;
          Alcotest.test_case "idle deadline poke" `Quick test_idle_deadline_fires_exactly;
        ] );
      ( "smp",
        [
          Alcotest.test_case "parallel execution" `Quick test_smp_parallel_execution;
          Alcotest.test_case "single checker polls" `Quick test_smp_single_checker_polls;
          Alcotest.test_case "checker handoff" `Quick test_smp_checker_handoff;
          Alcotest.test_case "no checker when all busy" `Quick test_smp_no_checker_when_all_busy;
          Alcotest.test_case "interrupt affinity" `Quick test_smp_interrupt_affinity;
          Alcotest.test_case "invalid args" `Quick test_smp_invalid_args;
        ] );
    ]
