(* Lint fixture for the ratchet baseline: exactly two DET002 findings.
   Never compiled — parsed by tools/lint only. *)

let a () = Random.int 10

let b () = Random.float 1.0
