(* Cross-backend equivalence for every Timer_store implementation:
   each store is driven through random schedule / cancel / re-arm /
   advance interleavings — including callbacks that schedule, cancel and
   re-arm during fire_due — and must produce a trace identical to the
   naive Reference model's, observation for observation. *)

let us = Time_ns.of_us

(* What a timer's callback does when it fires. *)
type cb_action =
  | Cb_noop
  | Cb_schedule of int  (* schedule a fresh timer [off] us after now *)
  | Cb_cancel of int  (* cancel timer (idx mod ids-so-far) *)
  | Cb_rearm of int * int  (* re-arm that timer to now + off *)

type op =
  | Schedule of int * cb_action  (* offset us from now *)
  | Cancel of int  (* idx mod ids-so-far *)
  | Rearm of int * int
  | Advance of int

(* Drive [ops] against one store, emitting every observable into a
   trace string: fired (id, deadline) sequences, fire_due return
   values, rearm results, and pending/next_deadline after each op. *)
let run_store (module M : Timer_store.S) (ops : op list) : string =
  let buf = Buffer.create 512 in
  let t = M.create ~tick:(us 10.0) () in
  let handles : (int, int M.handle) Hashtbl.t = Hashtbl.create 64 in
  let actions : (int, cb_action) Hashtbl.t = Hashtbl.create 64 in
  let next_id = ref 0 in
  let now = ref Time_ns.zero in
  let sched at action =
    let id = !next_id in
    incr next_id;
    let h = M.schedule t ~at id in
    Hashtbl.replace handles id h;
    Hashtbl.replace actions id action;
    id
  in
  let target idx =
    if !next_id = 0 then None
    else begin
      let id = idx mod !next_id in
      match Hashtbl.find_opt handles id with Some h -> Some (id, h) | None -> None
    end
  in
  let do_cancel idx =
    match target idx with
    | Some (id, h) ->
      M.cancel t h;
      Printf.sprintf "C%d:%b" id (M.handle_pending t h)
    | None -> "C-"
  in
  let do_rearm idx off =
    match target idx with
    | Some (id, h) ->
      let at = Time_ns.(!now + us (float_of_int off)) in
      let r = M.rearm t h ~at in
      Printf.sprintf "R%d@%Ld:%b" id at r
    | None -> "R-"
  in
  let obs () =
    Buffer.add_string buf
      (Printf.sprintf "|p=%d,nd=%s\n" (M.pending t)
         (match M.next_deadline t with None -> "-" | Some d -> Int64.to_string d))
  in
  List.iter
    (fun op ->
      (match op with
      | Schedule (off, action) ->
        let at = Time_ns.(!now + us (float_of_int off)) in
        let id = sched at action in
        Buffer.add_string buf (Printf.sprintf "S%d@%Ld" id at)
      | Cancel idx -> Buffer.add_string buf (do_cancel idx)
      | Rearm (idx, off) -> Buffer.add_string buf (do_rearm idx off)
      | Advance d ->
        now := Time_ns.(!now + us (float_of_int d));
        Buffer.add_string buf (Printf.sprintf "A@%Ld[" !now);
        let n =
          M.fire_due t ~now:!now ~limit:max_int (fun dl id ->
              Buffer.add_string buf (Printf.sprintf "%d@%Ld " id dl);
              match Hashtbl.find_opt actions id with
              | Some Cb_noop | None -> ()
              | Some (Cb_schedule off) ->
                let at = Time_ns.(!now + us (float_of_int off)) in
                let id' = sched at Cb_noop in
                Buffer.add_string buf (Printf.sprintf "s%d " id')
              | Some (Cb_cancel idx) -> Buffer.add_string buf (do_cancel idx ^ " ")
              | Some (Cb_rearm (idx, off)) -> Buffer.add_string buf (do_rearm idx off ^ " "))
        in
        Buffer.add_string buf
          (Printf.sprintf "]=%d/%d" (Fire_outcome.fired n) (Fire_outcome.scanned n)));
      obs ())
    ops;
  Buffer.contents buf

let pp_action = function
  | Cb_noop -> ""
  | Cb_schedule o -> Printf.sprintf "!s%d" o
  | Cb_cancel i -> Printf.sprintf "!c%d" i
  | Cb_rearm (i, o) -> Printf.sprintf "!r%d,%d" i o

let pp_ops ops =
  String.concat ";"
    (List.map
       (function
         | Schedule (o, a) -> Printf.sprintf "S%d%s" o (pp_action a)
         | Cancel i -> Printf.sprintf "C%d" i
         | Rearm (i, o) -> Printf.sprintf "R%d,%d" i o
         | Advance d -> Printf.sprintf "A%d" d)
       ops)

let cb_action_gen =
  QCheck.Gen.(
    frequency
      [
        (5, return Cb_noop);
        (2, map (fun o -> Cb_schedule o) (int_range 0 1_000));
        (2, map (fun i -> Cb_cancel i) (int_range 0 999));
        (2, map (fun (i, o) -> Cb_rearm (i, o)) (pair (int_range 0 999) (int_range 0 1_500)));
      ])

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun o a -> Schedule (o, a)) (int_range 0 2_000) cb_action_gen);
        (2, map (fun i -> Cancel i) (int_range 0 999));
        (3, map (fun (i, o) -> Rearm (i, o)) (pair (int_range 0 999) (int_range 0 2_000)));
        (3, map (fun d -> Advance d) (int_range 1 500));
      ])

let ops_arbitrary =
  QCheck.make ~print:pp_ops QCheck.Gen.(list_size (int_range 1 120) op_gen)

let equivalence_tests =
  List.map
    (fun (module M : Timer_store.S) ->
      QCheck.Test.make
        ~name:(Printf.sprintf "%s = reference model" M.name)
        ~count:200 ops_arbitrary
        (fun ops ->
          let got = run_store (module M) ops in
          let want = run_store (module Timer_store.Reference) ops in
          if String.equal got want then true
          else QCheck.Test.fail_reportf "%s diverged:\n--- %s\n%s\n--- reference\n%s" M.name
              M.name got want))
    Store_registry.exact

(* The approximate store fires at bucket-rounded deadlines, so its
   oracle is the reference model behind the same quantization
   ([Timer_store.Quantize]): trace equality then checks the full §7.1
   contract plus the rounding clause in one shot.  The granularity is
   the 10 µs tick [run_store] creates every store with; the generator's
   whole-µs offsets make most deadlines land off-grid, so rounding is
   genuinely exercised.  Small sized instances force level-1 epoch
   turnover, level-2 cascades, bucket-index reuse and far-list
   re-routing inside the generator's 2 ms deadline range. *)
module Quantized_reference = Timer_store.Quantize (Timer_store.Reference)

module Pacing_wheel_8 = Pacing_wheel.Sized (struct
  let buckets = 8
end)

module Pacing_wheel_32 = Pacing_wheel.Sized (struct
  let buckets = 32
end)

let approx_equivalence_tests =
  List.map
    (fun (label, (module M : Timer_store.S)) ->
      QCheck.Test.make
        ~name:(Printf.sprintf "%s = quantized reference" label)
        ~count:200 ops_arbitrary
        (fun ops ->
          let got = run_store (module M) ops in
          let want = run_store (module Quantized_reference) ops in
          if String.equal got want then true
          else QCheck.Test.fail_reportf "%s diverged:\n--- %s\n%s\n--- quantized reference\n%s"
              label label got want))
    [
      ("pacing-wheel", (module Pacing_wheel : Timer_store.S));
      ("pacing-wheel[8]", (module Pacing_wheel_8));
      ("pacing-wheel[32]", (module Pacing_wheel_32));
    ]

(* Residency must stay O(live) for every store under every random
   workload — the generalisation of the cancel-leak regression. *)
let residency_tests =
  List.map
    (fun (module M : Timer_store.S) ->
      QCheck.Test.make
        ~name:(Printf.sprintf "%s residency O(live)" M.name)
        ~count:100 ops_arbitrary
        (fun ops ->
          let t = M.create ~tick:(us 10.0) () in
          let handles = ref [] in
          let now = ref Time_ns.zero in
          let ok = ref true in
          let check () =
            if M.resident t > 2 * max (M.pending t) 512 then ok := false
          in
          List.iter
            (fun op ->
              (match op with
              | Schedule (off, _) ->
                let at = Time_ns.(!now + us (float_of_int off)) in
                handles := M.schedule t ~at 0 :: !handles
              | Cancel idx -> begin
                match List.nth_opt !handles (idx mod max 1 (List.length !handles)) with
                | Some h -> M.cancel t h
                | None -> ()
              end
              | Rearm (idx, off) -> begin
                match List.nth_opt !handles (idx mod max 1 (List.length !handles)) with
                | Some h ->
                  ignore (M.rearm t h ~at:Time_ns.(!now + us (float_of_int off)) : bool)
                | None -> ()
              end
              | Advance d ->
                now := Time_ns.(!now + us (float_of_int d));
                ignore (M.fire_due t ~now:!now ~limit:max_int (fun _ _ -> ()) : Fire_outcome.t));
              check ())
            ops;
          !ok))
    Store_registry.all

(* ------------------------------------------------------------------ *)
(* Deterministic unit regressions.                                     *)

let all_stores f =
  List.iter (fun (module M : Timer_store.S) -> f (module M : Timer_store.S)) Store_registry.all

(* Satellite bugfix: a callback that cancels a later same-batch timer
   must suppress that timer's dispatch (fire_sorted used to mark the
   whole batch Fired up front, making the cancel a silent no-op). *)
let test_in_batch_cancel_honored () =
  all_stores (fun (module M : Timer_store.S) ->
      let t = M.create ~tick:(us 10.0) () in
      let fired = ref [] in
      let victim = ref None in
      let _a =
        M.schedule t ~at:(us 10.0) `Canceller
      in
      victim := Some (M.schedule t ~at:(us 20.0) `Victim);
      let n =
        M.fire_due t ~now:(us 30.0) ~limit:max_int (fun _ v ->
            fired := v :: !fired;
            match (v, !victim) with
            | `Canceller, Some h -> M.cancel t h
            | _ -> ())
      in
      Alcotest.(check int) (M.name ^ ": only the canceller fires") 1 (Fire_outcome.fired n);
      Alcotest.(check int) (M.name ^ ": both were scanned") 2 (Fire_outcome.scanned n);
      Alcotest.(check bool) (M.name ^ ": victim did not fire") false
        (List.exists (fun v -> v = `Victim) !fired);
      Alcotest.(check int) (M.name ^ ": nothing pending") 0 (M.pending t))

(* Re-arm acts as cancel + schedule: new deadline, fresh tie position,
   surviving handle. *)
let test_rearm_semantics () =
  all_stores (fun (module M : Timer_store.S) ->
      let t = M.create ~tick:(us 10.0) () in
      let a = M.schedule t ~at:(us 20.0) "a" in
      let _b = M.schedule t ~at:(us 30.0) "b" in
      Alcotest.(check bool) (M.name ^ ": rearm pending") true (M.rearm t a ~at:(us 50.0));
      Alcotest.(check bool) (M.name ^ ": still pending after rearm") true (M.handle_pending t a);
      Alcotest.(check int64) (M.name ^ ": deadline updated") (us 50.0) (M.handle_deadline t a);
      let fired = ref [] in
      ignore (M.fire_due t ~now:(us 35.0) ~limit:max_int (fun _ v -> fired := v :: !fired) : Fire_outcome.t);
      Alcotest.(check (list string)) (M.name ^ ": only b at 35") [ "b" ] (List.rev !fired);
      ignore (M.fire_due t ~now:(us 60.0) ~limit:max_int (fun _ v -> fired := v :: !fired) : Fire_outcome.t);
      Alcotest.(check (list string)) (M.name ^ ": a after rearm") [ "b"; "a" ] (List.rev !fired);
      Alcotest.(check bool) (M.name ^ ": rearm after fire refused") false
        (M.rearm t a ~at:(us 99.0)))

let test_rearm_tie_position () =
  all_stores (fun (module M : Timer_store.S) ->
      let t = M.create ~tick:(us 10.0) () in
      let x = M.schedule t ~at:(us 50.0) "x" in
      let _y = M.schedule t ~at:(us 50.0) "y" in
      (* Re-arming x to the same deadline demotes it behind y. *)
      Alcotest.(check bool) (M.name ^ ": rearm ok") true (M.rearm t x ~at:(us 50.0));
      let fired = ref [] in
      ignore (M.fire_due t ~now:(us 60.0) ~limit:max_int (fun _ v -> fired := v :: !fired) : Fire_outcome.t);
      Alcotest.(check (list string)) (M.name ^ ": fresh tie position") [ "y"; "x" ]
        (List.rev !fired))

(* The ~limit budget: at most [limit] callbacks per call; withheld
   entries keep their deadline and tie position and fire, in order, on
   a later call.  [scanned] always counts the whole due batch, so
   [fired < scanned] is the observable "budget bit" signature. *)
let test_fire_budget_withholds () =
  all_stores (fun (module M : Timer_store.S) ->
      let t = M.create ~tick:(us 10.0) () in
      List.iteri
        (fun i v ->
          let _ = M.schedule t ~at:(us (10.0 *. float_of_int (i + 1))) v in
          ())
        [ "a"; "b"; "c"; "d"; "e" ];
      let order = ref [] in
      let o1 = M.fire_due t ~now:(us 100.0) ~limit:2 (fun _ v -> order := v :: !order) in
      Alcotest.(check int) (M.name ^ ": budget fired 2") 2 (Fire_outcome.fired o1);
      Alcotest.(check int) (M.name ^ ": scanned whole batch") 5 (Fire_outcome.scanned o1);
      Alcotest.(check (list string)) (M.name ^ ": earliest two first") [ "a"; "b" ]
        (List.rev !order);
      Alcotest.(check int) (M.name ^ ": three withheld") 3 (M.pending t);
      let o2 = M.fire_due t ~now:(us 100.0) ~limit:max_int (fun _ v -> order := v :: !order) in
      Alcotest.(check int) (M.name ^ ": rest fired") 3 (Fire_outcome.fired o2);
      Alcotest.(check int) (M.name ^ ": rest scanned") 3 (Fire_outcome.scanned o2);
      Alcotest.(check (list string)) (M.name ^ ": order preserved across calls")
        [ "a"; "b"; "c"; "d"; "e" ] (List.rev !order);
      Alcotest.(check int) (M.name ^ ": drained") 0 (M.pending t))

let test_fire_budget_tie_order () =
  all_stores (fun (module M : Timer_store.S) ->
      let t = M.create ~tick:(us 10.0) () in
      let _ = M.schedule t ~at:(us 50.0) "x" in
      let _ = M.schedule t ~at:(us 50.0) "y" in
      let fired = ref [] in
      ignore
        (M.fire_due t ~now:(us 60.0) ~limit:1 (fun _ v -> fired := v :: !fired)
          : Fire_outcome.t);
      ignore
        (M.fire_due t ~now:(us 60.0) ~limit:1 (fun _ v -> fired := v :: !fired)
          : Fire_outcome.t);
      Alcotest.(check (list string)) (M.name ^ ": tie order survives withholding") [ "x"; "y" ]
        (List.rev !fired))

(* Regression (cancel-leak, store-wide): schedule/cancel churn of
   far-future timers must not grow residency past the compaction bound.
   This is the Sorted_list leak the issue names, checked on every
   store. *)
let test_cancel_churn_bounded () =
  all_stores (fun (module M : Timer_store.S) ->
      let t = M.create ~tick:(us 10.0) () in
      let keeper = M.schedule t ~at:(us 1e9) "keeper" in
      let worst = ref 0 in
      for i = 1 to 50_000 do
        let h = M.schedule t ~at:(us (100_000.0 +. float_of_int i)) "churn" in
        M.cancel t h;
        if M.resident t > !worst then worst := M.resident t
      done;
      Alcotest.(check bool)
        (Printf.sprintf "%s: resident bounded under cancel churn (worst %d)" M.name !worst)
        true
        (!worst <= (2 * 512) + 2);
      Alcotest.(check int) (M.name ^ ": only keeper pending") 1 (M.pending t);
      Alcotest.(check bool) (M.name ^ ": keeper survives") true (M.handle_pending t keeper))

(* Same bound under re-arm churn: re-arming one timer 50k times must not
   accumulate stale entries (each re-arm leaves a corpse in the lazy
   stores). *)
let test_rearm_churn_bounded () =
  all_stores (fun (module M : Timer_store.S) ->
      let t = M.create ~tick:(us 10.0) () in
      let h = M.schedule t ~at:(us 100.0) "rearmer" in
      let worst = ref 0 in
      for i = 1 to 50_000 do
        ignore (M.rearm t h ~at:(us (100.0 +. float_of_int i)) : bool);
        if M.resident t > !worst then worst := M.resident t
      done;
      Alcotest.(check bool)
        (Printf.sprintf "%s: resident bounded under rearm churn (worst %d)" M.name !worst)
        true
        (!worst <= (2 * 512) + 2);
      Alcotest.(check int) (M.name ^ ": one pending") 1 (M.pending t);
      let fired = ref 0 in
      ignore (M.fire_due t ~now:(us 1e9) ~limit:max_int (fun _ _ -> incr fired) : Fire_outcome.t);
      Alcotest.(check int) (M.name ^ ": fires exactly once") 1 !fired)

(* ------------------------------------------------------------------ *)
(* Pacing-wheel contract tests: the approximate-firing clauses that the
   quantized qcheck oracle covers statistically, pinned down
   deterministically on a tiny 8-bucket geometry (level-1 horizon
   80 µs, level-2 horizon 640 µs at the 10 µs tick). *)

(* Never-early quantization: deadlines round up to the tick. *)
let test_pw_quantization () =
  let module M = Pacing_wheel in
  let t = M.create ~tick:(us 10.0) () in
  let h = M.schedule t ~at:(us 15.0) "x" in
  Alcotest.(check int64) "deadline rounded up" (us 20.0) (M.handle_deadline t h);
  Alcotest.(check (option int64)) "next_deadline rounded up" (Some (us 20.0))
    (M.next_deadline t);
  let fired = ref [] in
  ignore
    (M.fire_due t ~now:(us 19.9) ~limit:max_int (fun dl v -> fired := (dl, v) :: !fired)
      : Fire_outcome.t);
  Alcotest.(check int) "nothing before the bucket boundary" 0 (List.length !fired);
  ignore
    (M.fire_due t ~now:(us 20.0) ~limit:max_int (fun dl v -> fired := (dl, v) :: !fired)
      : Fire_outcome.t);
  Alcotest.(check (list (pair int64 string))) "fires at the rounded deadline"
    [ (us 20.0, "x") ] !fired

(* Bucket-index reuse across epochs: ticks 3 and 11 share level-1
   bucket 3 on an 8-bucket wheel; tick 11 must wait in level 2 until
   the epoch advances, and the FFS scan of the reused index must not
   resurrect the drained lap.  The far entry crosses both cascade
   levels before firing. *)
let test_pw_epoch_wraparound () =
  let module M = Pacing_wheel_8 in
  let t = M.create ~tick:(us 10.0) () in
  let fired = ref [] in
  let fire now =
    fired := [];
    ignore
      (M.fire_due t ~now ~limit:max_int (fun dl v -> fired := (dl, v) :: !fired)
        : Fire_outcome.t);
    List.rev !fired
  in
  let _a = M.schedule t ~at:(us 30.0) "a" in
  let _b = M.schedule t ~at:(us 110.0) "b" in
  let _c = M.schedule t ~at:(us 700.0) "c" in
  Alcotest.(check (list (pair int64 string))) "tick 3 fires alone" [ (us 30.0, "a") ]
    (fire (us 30.0));
  (* Same level-1 index as b (11 mod 8 = 3), scheduled after the epoch
     holding tick 3 was partially drained. *)
  let _d = M.schedule t ~at:(us 110.0) "d" in
  Alcotest.(check (list (pair int64 string))) "reused index drains in tie order"
    [ (us 110.0, "b"); (us 110.0, "d") ]
    (fire (us 200.0));
  Alcotest.(check (list (pair int64 string))) "far entry cascades through both levels"
    [ (us 700.0, "c") ]
    (fire (us 1000.0));
  Alcotest.(check int) "drained" 0 (M.pending t)

(* In-callback re-arm, both directions: re-armed into the future the
   entry leaves the batch; re-armed to an already-due deadline it still
   must not fire in the same call (fresh tie position = not in the
   snapshot), and the next call dispatches it at the re-armed, rounded
   deadline even though the wheel has retired past that tick. *)
let test_pw_in_callback_rearm () =
  let module M = Pacing_wheel_8 in
  (* Future re-arm. *)
  let t = M.create ~tick:(us 10.0) () in
  let b = ref None in
  let _a =
    M.schedule t ~at:(us 10.0) `Rearmer
  in
  b := Some (M.schedule t ~at:(us 20.0) `Victim);
  let fired = ref 0 in
  let o1 =
    M.fire_due t ~now:(us 50.0) ~limit:max_int (fun _ v ->
        incr fired;
        match (v, !b) with
        | `Rearmer, Some h -> ignore (M.rearm t h ~at:(us 100.0) : bool)
        | _ -> ())
  in
  Alcotest.(check int) "only the rearmer fires" 1 (Fire_outcome.fired o1);
  Alcotest.(check int) "victim still scanned" 2 (Fire_outcome.scanned o1);
  let o2 = M.fire_due t ~now:(us 100.0) ~limit:max_int (fun _ _ -> incr fired) in
  Alcotest.(check int) "victim fires at the re-armed deadline" 1 (Fire_outcome.fired o2);
  Alcotest.(check int) "two callbacks total" 2 !fired;
  (* Already-due re-arm: lands below the retired range (the past list). *)
  let t = M.create ~tick:(us 10.0) () in
  let b = ref None in
  let _a =
    M.schedule t ~at:(us 10.0) `Rearmer
  in
  b := Some (M.schedule t ~at:(us 20.0) `Victim);
  let seen = ref [] in
  let o3 =
    M.fire_due t ~now:(us 50.0) ~limit:max_int (fun dl v ->
        seen := (dl, v) :: !seen;
        match (v, !b) with
        | `Rearmer, Some h -> ignore (M.rearm t h ~at:(us 30.0) : bool)
        | _ -> ())
  in
  Alcotest.(check int) "due re-arm leaves the snapshot" 1 (Fire_outcome.fired o3);
  let o4 = M.fire_due t ~now:(us 50.0) ~limit:max_int (fun dl v -> seen := (dl, v) :: !seen) in
  Alcotest.(check int) "due re-arm fires next call" 1 (Fire_outcome.fired o4);
  Alcotest.(check bool) "at the re-armed deadline" true
    (match !seen with (dl, `Victim) :: _ -> Time_ns.(dl = us 30.0) | _ -> false);
  Alcotest.(check int) "nothing left" 0 (M.pending t)

(* Determinism: the facility's observable behaviour — the full trace of
   soft_sched/soft_cancel/soft_fire events, digested — must not depend
   on which store backs it.  Runs a trigger-driven machine with a
   re-arm-heavy timer client under every store and compares digests. *)
let digest_with (module M : Timer_store.S) =
  let e = Engine.create () in
  let m = Machine.create e in
  let st = Softtimer.attach ~store:(module M) m in
  let tr = Trace.create ~capacity:65536 () in
  Trace.install tr;
  (* Steady synthetic trigger source (syscall every ~20 us). *)
  let rng = Prng.create ~seed:42 in
  let rec triggers _now =
    let u = Dist.draw (Dist.Exponential 20.0) rng in
    Kernel.user m ~work_us:u (fun _ -> Kernel.syscall m ~work_us:1.0 triggers)
  in
  triggers Time_ns.zero;
  (* Timer client: a 50 us heartbeat that each round schedules two
     timers, cancels one and pushes the other out by ~100 us. *)
  let rec heartbeat n _now =
    if n < 200 then begin
      let doomed = Softtimer.schedule_after st (us 500.0) (fun _ -> ()) in
      let pushed = Softtimer.schedule_after st (us 700.0) (fun _ -> ()) in
      Softtimer.cancel st doomed;
      ignore (Softtimer.rearm st pushed ~ticks:30_000L : bool);
      ignore (Softtimer.schedule_after st (us 50.0) (heartbeat (n + 1)) : Softtimer.handle)
    end
  in
  heartbeat 0 Time_ns.zero;
  Engine.run_until e (Time_ns.of_ms 50.0);
  Trace.uninstall ();
  (Trace_digest.digest tr, Trace.total tr, Softtimer.fired st, Softtimer.store_name st)

(* Exact stores only: the approximate store legitimately shifts fire
   times to bucket boundaries, so its trace digest differs by design
   (its own oracle is the quantized-equivalence suite above). *)
let test_digest_store_independent () =
  match Store_registry.exact with
  | [] -> Alcotest.fail "empty store registry"
  | first :: rest ->
    let d0, n0, f0, name0 = digest_with first in
    Alcotest.(check bool) (name0 ^ ": something fired") true (f0 > 0);
    List.iter
      (fun (module M : Timer_store.S) ->
        let d, n, f, name = digest_with (module M) in
        Alcotest.(check int) (name ^ ": same event count as " ^ name0) n0 n;
        Alcotest.(check int) (name ^ ": same fired count") f0 f;
        Alcotest.(check int64) (name ^ ": same trace digest") d0 d)
      rest

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "timer_store"
    [
      ( "unit",
        [
          Alcotest.test_case "in-batch cancel honored" `Quick test_in_batch_cancel_honored;
          Alcotest.test_case "rearm semantics" `Quick test_rearm_semantics;
          Alcotest.test_case "rearm tie position" `Quick test_rearm_tie_position;
          Alcotest.test_case "fire budget withholds" `Quick test_fire_budget_withholds;
          Alcotest.test_case "fire budget tie order" `Quick test_fire_budget_tie_order;
          Alcotest.test_case "cancel churn bounded" `Quick test_cancel_churn_bounded;
          Alcotest.test_case "rearm churn bounded" `Quick test_rearm_churn_bounded;
          Alcotest.test_case "digest independent of store" `Quick test_digest_store_independent;
        ] );
      ( "pacing-wheel",
        [
          Alcotest.test_case "never-early quantization" `Quick test_pw_quantization;
          Alcotest.test_case "FFS epoch wraparound" `Quick test_pw_epoch_wraparound;
          Alcotest.test_case "in-callback rearm" `Quick test_pw_in_callback_rearm;
        ] );
      ("equivalence", List.map qc equivalence_tests);
      ("approx-equivalence", List.map qc approx_equivalence_tests);
      ("residency", List.map qc residency_tests);
    ]
