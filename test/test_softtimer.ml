(* Tests for the core contribution: the soft-timer facility, the
   rate-based clock, the hardware pacer baseline, network polling and
   the measurement probes.  The central property is the paper's firing
   window: T < actual < T + X + 1 measurement ticks. *)

let us = Time_ns.of_us

let fresh () =
  let e = Engine.create () in
  let m = Machine.create e in
  let st = Softtimer.attach m in
  (e, m, st)

(* A steady synthetic trigger source: syscall every ~gap_us. *)
let start_triggers ?(gap_us = 20.0) m seed =
  let rng = Prng.create ~seed in
  let rec loop _now =
    let u = Dist.draw (Dist.Exponential gap_us) rng in
    Kernel.user m ~work_us:u (fun _ -> Kernel.syscall m ~work_us:1.0 loop)
  in
  loop Time_ns.zero

(* ------------------------------------------------------------------ *)
(* Facility basics *)

let test_api_constants () =
  let _, _, st = fresh () in
  Alcotest.(check int64) "measure resolution = CPU Hz" 300_000_000L (Softtimer.measure_resolution st);
  Alcotest.(check int64) "interrupt clock" 1_000L (Softtimer.interrupt_clock_resolution st);
  Alcotest.(check int64) "X ratio" 300_000L (Softtimer.x_ratio st)

let test_measure_time_advances () =
  let e, _, st = fresh () in
  let t0 = Softtimer.measure_time st in
  Engine.run_until e (us 10.0);
  let t1 = Softtimer.measure_time st in
  (* 10 us at 300 MHz = 3000 ticks. *)
  Alcotest.(check int64) "3000 ticks elapsed" 3_000L (Int64.sub t1 t0)

let test_event_fires_at_trigger () =
  let e, m, st = fresh () in
  start_triggers m 1;
  let fired_at = ref None in
  ignore (Softtimer.schedule_after st (us 100.0) (fun now -> fired_at := Some now)
           : Softtimer.handle);
  Engine.run_until e (Time_ns.of_ms 5.0);
  (match !fired_at with
  | None -> Alcotest.fail "event never fired"
  | Some t ->
    Alcotest.(check bool) "after the delay" true Time_ns.(t >= us 100.0);
    Alcotest.(check bool) "well before the backup tick" true Time_ns.(t < us 400.0));
  Alcotest.(check int) "fired count" 1 (Softtimer.fired st);
  Alcotest.(check bool) "checks happened" true (Softtimer.checks st > 10)

let test_backup_clock_bounds_delay () =
  (* No trigger sources at all (idle machine, deadline oracle disabled by
     detaching? no: the idle oracle fires exactly on time).  Make the CPU
     busy with trigger-less background work instead, so only the 1 kHz
     backup can fire the event. *)
  let e, m, st = fresh () in
  let rec hog _now =
    Machine.submit_quantum m ~prio:Cpu.prio_user ~work_us:500.0 ~trigger:None hog
  in
  hog Time_ns.zero;
  let fired_at = ref None in
  ignore (Softtimer.schedule_after st (us 50.0) (fun now -> fired_at := Some now)
           : Softtimer.handle);
  Engine.run_until e (Time_ns.of_ms 10.0);
  match !fired_at with
  | None -> Alcotest.fail "backup never fired the event"
  | Some t ->
    Alcotest.(check bool) "not early" true Time_ns.(t >= us 50.0);
    (* One backup period (1 ms) plus handler-completion slack. *)
    Alcotest.(check bool) "within ~one backup period" true Time_ns.(t <= Time_ns.of_ms 1.6)

let test_cancel_prevents_firing () =
  let e, m, st = fresh () in
  start_triggers m 2;
  let fired = ref false in
  let h = Softtimer.schedule_after st (us 100.0) (fun _ -> fired := true) in
  Alcotest.(check int) "pending" 1 (Softtimer.pending st);
  Softtimer.cancel st h;
  Alcotest.(check int) "cancelled" 0 (Softtimer.pending st);
  Engine.run_until e (Time_ns.of_ms 5.0);
  Alcotest.(check bool) "never fired" false !fired

let test_single_facility_per_machine () =
  let e = Engine.create () in
  let m = Machine.create e in
  let _st = Softtimer.attach m in
  Alcotest.check_raises "second attach rejected"
    (Invalid_argument "Softtimer.attach: a facility is already attached to this machine")
    (fun () -> ignore (Softtimer.attach m))

let test_detach_stops_firing () =
  let e, m, st = fresh () in
  start_triggers m 3;
  let fired = ref false in
  ignore (Softtimer.schedule_after st (us 50.0) (fun _ -> fired := true) : Softtimer.handle);
  Softtimer.detach st;
  Engine.run_until e (Time_ns.of_ms 5.0);
  Alcotest.(check bool) "no firing after detach" false !fired;
  (* The machine accepts a new facility afterwards. *)
  ignore (Softtimer.attach m : Softtimer.t)

let test_negative_ticks_rejected () =
  let _, _, st = fresh () in
  Alcotest.check_raises "negative" (Invalid_argument "Softtimer.schedule_soft_event: negative ticks")
    (fun () -> ignore (Softtimer.schedule_soft_event st ~ticks:(-1L) (fun _ -> ())))

let test_delay_recording () =
  let e, m, st = fresh () in
  start_triggers m 4;
  Softtimer.set_record_delays st true;
  for _ = 1 to 20 do
    ignore (Softtimer.schedule_after st (us 30.0) (fun _ -> ()) : Softtimer.handle)
  done;
  Engine.run_until e (Time_ns.of_ms 20.0);
  let d = Softtimer.delays st in
  Alcotest.(check int) "all delays recorded" 20 (Stats.Sample.count d);
  Alcotest.(check bool) "delays non-negative" true (Stats.Sample.min d >= 0.0)

(* The paper's bound, as a property over random T and trigger gaps. *)
let test_bounds_property =
  QCheck.Test.make ~name:"T < actual <= T + X + 1 ticks" ~count:60
    QCheck.(pair (int_range 0 200_000) (int_range 5 200))
    (fun (ticks, gap_us) ->
      let e, m, st = fresh () in
      start_triggers ~gap_us:(float_of_int gap_us) m (ticks + gap_us);
      let sched = Softtimer.measure_time st in
      let ok = ref None in
      ignore
        (Softtimer.schedule_soft_event st ~ticks:(Int64.of_int ticks) (fun now ->
             let actual_ticks = Int64.to_float now /. 1e9 *. 300e6 -. Int64.to_float sched in
             let x = Int64.to_float (Softtimer.x_ratio st) in
             ok :=
               Some
                 (actual_ticks > float_of_int ticks
                 && actual_ticks <= float_of_int ticks +. x +. 1.0 +. 2_000.0
                    (* 2000 ticks (~6.6 us) of slack for the backup tick's
                       own handler completion time *)))
          : Softtimer.handle);
      Engine.run_until e (Time_ns.of_sec 0.05);
      !ok = Some true)

let test_idle_cpu_rescues_busy_machine () =
  (* Â§5.3: with every CPU compute-bound and trigger-less, events wait
     for the backup clock; an extra idle CPU restores exact firing. *)
  let lateness ~cpus =
    let e = Engine.create () in
    let m = Machine.create ~cpus e in
    let st = Softtimer.attach m in
    let rec hog _now =
      Machine.submit_quantum m ~cpu:0 ~prio:Cpu.prio_user ~work_us:700.0 ~trigger:None hog
    in
    hog Time_ns.zero;
    let late = Stats.Sample.create () in
    let rec periodic () =
      let at = Engine.now e in
      ignore
        (Softtimer.schedule_after st (us 100.0) (fun now ->
             Stats.Sample.add late (Time_ns.to_us Time_ns.(now - at) -. 100.0);
             periodic ())
          : Softtimer.handle)
    in
    periodic ();
    Engine.run_until e (Time_ns.of_sec 0.5);
    Stats.Sample.mean late
  in
  let single = lateness ~cpus:1 and dual = lateness ~cpus:2 in
  Alcotest.(check bool)
    (Printf.sprintf "single-cpu waits for the backup (mean %.0f us)" single)
    true (single > 300.0);
  Alcotest.(check bool)
    (Printf.sprintf "idle second cpu fires on time (mean %.1f us)" dual)
    true (dual < 5.0)

(* ------------------------------------------------------------------ *)
(* Rate_clock *)

let test_rate_clock_converges_to_target () =
  let e, m, st = fresh () in
  start_triggers ~gap_us:8.0 m 5;
  let sends = ref 0 in
  let clock =
    Rate_clock.create st
      ~intervals:(Hdr.create ~lowest:0.01 ())
      ~target_interval:(us 50.0) ~min_interval:(us 12.0)
      ~send:(fun _ -> incr sends; true)
      ()
  in
  Rate_clock.start clock;
  Engine.run_until e (Time_ns.of_sec 1.0);
  let expected = 1_000_000.0 /. 50.0 in
  let got = float_of_int !sends in
  Alcotest.(check bool)
    (Printf.sprintf "~%.0f sends (got %d)" expected !sends)
    true
    (Float.abs (got -. expected) < 0.05 *. expected);
  let iv = Rate_clock.intervals clock in
  Alcotest.(check bool) "mean interval ~ target" true
    (Float.abs (Hdr.mean iv -. 50.0) < 3.0)

let test_rate_clock_respects_min_interval () =
  let e, m, st = fresh () in
  start_triggers ~gap_us:2.0 m 6;
  let clock =
    Rate_clock.create st
      ~intervals:(Hdr.create ~lowest:0.01 ())
      ~target_interval:(us 50.0) ~min_interval:(us 10.0)
      ~send:(fun _ -> true)
      ()
  in
  Rate_clock.start clock;
  Engine.run_until e (Time_ns.of_sec 0.3);
  let iv = Rate_clock.intervals clock in
  (* No interval may undercut the burst bound (tick rounding aside). *)
  Alcotest.(check bool) "min respected" true (Hdr.min iv >= 9.9)

let test_rate_clock_train_ends_and_kicks () =
  let e, m, st = fresh () in
  start_triggers ~gap_us:10.0 m 7;
  let budget = ref 5 in
  let clock =
    Rate_clock.create st ~target_interval:(us 40.0) ~min_interval:(us 12.0)
      ~send:(fun _ -> if !budget > 0 then (decr budget; true) else false)
      ()
  in
  Rate_clock.start clock;
  Engine.run_until e (Time_ns.of_sec 0.1);
  Alcotest.(check int) "train drained the budget" 5 (Rate_clock.sends clock);
  Alcotest.(check bool) "clock idle after empty send" false (Rate_clock.active clock);
  budget := 3;
  Rate_clock.kick clock;
  Engine.run_until e Time_ns.(Engine.now e + Time_ns.of_sec 0.1);
  Alcotest.(check int) "kick starts a new train" 8 (Rate_clock.sends clock)

let test_rate_clock_stop () =
  let e, m, st = fresh () in
  start_triggers m 8;
  let clock =
    Rate_clock.create st ~target_interval:(us 40.0) ~min_interval:(us 12.0)
      ~send:(fun _ -> true)
      ()
  in
  Rate_clock.start clock;
  Engine.run_until e (Time_ns.of_sec 0.05);
  Rate_clock.stop clock;
  let n = Rate_clock.sends clock in
  Engine.run_until e Time_ns.(Engine.now e + Time_ns.of_sec 0.1);
  Alcotest.(check int) "no sends after stop" n (Rate_clock.sends clock)

let test_two_clocks_different_rates () =
  (* Â§5.7: soft timers can clock multiple connections simultaneously at
     different rates -- impossible with a single hardware timer. *)
  let e, m, st = fresh () in
  start_triggers ~gap_us:6.0 m 12;
  let mk target =
    let sends = ref 0 in
    let clock =
      Rate_clock.create st ~target_interval:(us target) ~min_interval:(us 12.0)
        ~send:(fun _ -> incr sends; true)
        ()
    in
    Rate_clock.start clock;
    (clock, sends)
  in
  let _c1, s1 = mk 50.0 in
  let _c2, s2 = mk 200.0 in
  Engine.run_until e (Time_ns.of_sec 1.0);
  let r1 = float_of_int !s1 and r2 = float_of_int !s2 in
  Alcotest.(check bool) (Printf.sprintf "fast clock ~20k (got %.0f)" r1) true
    (Float.abs (r1 -. 20_000.0) < 1_500.0);
  Alcotest.(check bool) (Printf.sprintf "slow clock ~5k (got %.0f)" r2) true
    (Float.abs (r2 -. 5_000.0) < 400.0)

let test_rate_clock_invalid_args () =
  let _, _, st = fresh () in
  Alcotest.check_raises "min > target"
    (Invalid_argument "Rate_clock.create: need 0 < min_interval <= target_interval") (fun () ->
      ignore
        (Rate_clock.create st ~target_interval:(us 10.0) ~min_interval:(us 20.0)
           ~send:(fun _ -> true)
           ()))

let test_rate_clock_memory_bounded () =
  (* Regression: [intervals] used to retain one float per send
     (Stats.Sample.t), i.e. unbounded memory on a long-lived clock — a
     million sends a million floats.  The Hdr store must record every
     gap while staying at a few hundred buckets. *)
  let e, m, st = fresh () in
  start_triggers ~gap_us:4.0 m 9;
  let clock =
    (* Private histogram: this test counts exactly the gaps of this one
       clock, which the shared cohort default would fold together. *)
    Rate_clock.create st
      ~intervals:(Hdr.create ~lowest:0.01 ())
      ~target_interval:(us 12.0) ~min_interval:(us 12.0)
      ~send:(fun _ -> true)
      ()
  in
  Rate_clock.start clock;
  Engine.run_until e (Time_ns.of_sec 18.0);
  Rate_clock.stop clock;
  let iv = Rate_clock.intervals clock in
  let sends = Rate_clock.sends clock in
  Alcotest.(check bool)
    (Printf.sprintf "over 1e6 sends (got %d)" sends)
    true (sends >= 1_000_000);
  (* One train, so every send but the first has a recorded gap: nothing
     was sampled away. *)
  Alcotest.(check int) "every gap recorded" (sends - 1) (Hdr.count iv);
  Alcotest.(check bool)
    (Printf.sprintf "bounded store: %d buckets" (Hdr.bucket_count iv))
    true
    (Hdr.bucket_count iv < 1024)

(* ------------------------------------------------------------------ *)
(* Hw_pacer *)

let test_hw_pacer_paces_at_interval () =
  let e = Engine.create () in
  let m = Machine.create e in
  let pacer = Hw_pacer.create m ~interval:(us 100.0) ~send:(fun _ -> true) () in
  Hw_pacer.start pacer;
  Engine.run_until e (Time_ns.of_sec 0.5);
  let iv = Hw_pacer.intervals pacer in
  Alcotest.(check bool)
    (Printf.sprintf "mean ~100us (got %.1f)" (Hdr.mean iv))
    true
    (Float.abs (Hdr.mean iv -. 100.0) < 3.0);
  Alcotest.(check bool) "~5000 sends" true (abs (Hw_pacer.sends pacer - 5_000) < 100)

let test_hw_pacer_pays_interrupt_cost () =
  let e = Engine.create () in
  let m = Machine.create e in
  let pacer = Hw_pacer.create m ~interval:(us 50.0) ~send:(fun _ -> false) () in
  Hw_pacer.start pacer;
  Engine.run_until e (Time_ns.of_sec 0.1);
  (* ~2000 ticks, each costing >= 4.45 us of interrupt overhead even
     though nothing was pending. *)
  let busy_us = Time_ns.to_us (Cpu.busy_ns (Machine.cpu m)) in
  Alcotest.(check bool)
    (Printf.sprintf "ticks cost CPU (%.0f us)" busy_us)
    true (busy_us > 2_000.0 *. 4.4);
  Alcotest.(check int) "no sends" 0 (Hw_pacer.sends pacer)

let test_hw_pacer_stop () =
  let e = Engine.create () in
  let m = Machine.create e in
  let pacer = Hw_pacer.create m ~interval:(us 100.0) ~send:(fun _ -> true) () in
  Hw_pacer.start pacer;
  Engine.run_until e (Time_ns.of_sec 0.05);
  Hw_pacer.stop pacer;
  let n = Hw_pacer.sends pacer in
  Engine.run_until e Time_ns.(Engine.now e + Time_ns.of_sec 0.1);
  Alcotest.(check int) "stopped" n (Hw_pacer.sends pacer)

(* ------------------------------------------------------------------ *)
(* Net_poll *)

let test_net_poll_adapts_interval () =
  let e, m, st = fresh () in
  start_triggers ~gap_us:5.0 m 9;
  (* A synthetic "ring": packets accumulate at a constant 1 per 40 us. *)
  let backlog = ref 0.0 in
  let last = ref Time_ns.zero in
  let poll now =
    let dt = Time_ns.to_us Time_ns.(now - !last) in
    last := now;
    backlog := !backlog +. (dt /. 40.0);
    let take = int_of_float !backlog in
    backlog := !backlog -. float_of_int take;
    take
  in
  let poller = Net_poll.create st ~quota:4.0 ~poll () in
  Net_poll.start poller;
  Engine.run_until e (Time_ns.of_sec 1.0);
  let mean_batch = Net_poll.mean_batch poller in
  Alcotest.(check bool)
    (Printf.sprintf "mean batch near quota (got %.2f)" mean_batch)
    true
    (mean_batch > 2.6 && mean_batch < 6.0);
  let iv = Time_ns.to_us (Net_poll.current_interval poller) in
  Alcotest.(check bool)
    (Printf.sprintf "interval near 160us (got %.1f)" iv)
    true (iv > 90.0 && iv < 260.0)

let test_net_poll_bounds_respected () =
  let e, m, st = fresh () in
  start_triggers ~gap_us:5.0 m 10;
  (* Nothing ever found: the interval must grow to its cap and stop. *)
  let poller =
    Net_poll.create st ~quota:2.0 ~poll:(fun _ -> 0) ~max_interval:(Time_ns.of_us 500.0) ()
  in
  Net_poll.start poller;
  Engine.run_until e (Time_ns.of_sec 0.5);
  Alcotest.(check int64) "capped at max" (Time_ns.of_us 500.0) (Net_poll.current_interval poller);
  Net_poll.stop poller;
  let polls = Net_poll.polls poller in
  Engine.run_until e Time_ns.(Engine.now e + Time_ns.of_sec 0.2);
  Alcotest.(check int) "stopped" polls (Net_poll.polls poller)

let test_net_poll_invalid_quota () =
  let _, _, st = fresh () in
  Alcotest.check_raises "quota <= 0" (Invalid_argument "Net_poll.create: quota must be positive")
    (fun () -> ignore (Net_poll.create st ~quota:0.0 ~poll:(fun _ -> 0) ()))

(* ------------------------------------------------------------------ *)
(* Delay_probe *)

let test_gap_recorder_filters () =
  let _, m, _ = fresh () in
  let all = Delay_probe.Gap_recorder.attach m in
  let only_sys = Delay_probe.Gap_recorder.attach ~include_kinds:[ Trigger.Syscall ] m in
  let no_sys = Delay_probe.Gap_recorder.attach ~exclude_kinds:[ Trigger.Syscall ] m in
  Machine.fire_trigger m Trigger.Syscall;
  Machine.fire_trigger m Trigger.Trap;
  Machine.fire_trigger m Trigger.Syscall;
  Alcotest.(check int) "all" 3 (Delay_probe.Gap_recorder.total all);
  Alcotest.(check int) "only syscalls" 2 (Delay_probe.Gap_recorder.total only_sys);
  Alcotest.(check int) "without syscalls" 1 (Delay_probe.Gap_recorder.total no_sys);
  Alcotest.(check int) "count by kind" 2 (Delay_probe.Gap_recorder.count all Trigger.Syscall)

let test_gap_recorder_source_fractions () =
  let _, m, _ = fresh () in
  let r = Delay_probe.Gap_recorder.attach m in
  for _ = 1 to 3 do
    Machine.fire_trigger m Trigger.Syscall
  done;
  Machine.fire_trigger m Trigger.Ip_output;
  (* Clock ticks are excluded from the Table 2 accounting. *)
  Machine.fire_trigger m Trigger.Clock_tick;
  let fr = Delay_probe.Gap_recorder.source_fractions r in
  Alcotest.(check (float 1e-9)) "syscalls 75%" 0.75 (List.assoc Trigger.Syscall fr);
  Alcotest.(check (float 1e-9)) "ip-output 25%" 0.25 (List.assoc Trigger.Ip_output fr)

let test_event_delay_probe () =
  let e, m, st = fresh () in
  start_triggers ~gap_us:25.0 m 11;
  let probe = Delay_probe.Event_delay.start_periodic st ~ticks:0L in
  Engine.run_until e (Time_ns.of_sec 0.5);
  Delay_probe.Event_delay.stop probe;
  let inter = Delay_probe.Event_delay.inter_firing probe in
  Alcotest.(check bool) "fired a lot" true (Delay_probe.Event_delay.fired probe > 1_000);
  (* With T=0, firings track trigger states: mean inter-firing time is
     close to the trigger gap mean (~26 us with the syscall cost). *)
  let mean = Stats.Sample.mean inter in
  Alcotest.(check bool)
    (Printf.sprintf "mean inter-firing ~ trigger gap (got %.1f)" mean)
    true
    (mean > 18.0 && mean < 38.0)

(* ------------------------------------------------------------------ *)
(* Delay-audit conservation: for random workloads, random check
   budgets and EVERY registered timer store, the forensic attribution
   must partition each fire's delay exactly — segments sum to
   [fire_at - due] with zero violations, and the fire counts
   reconcile.  This is the tentpole's conservation contract checked
   end-to-end through the real machine, not a synthetic stream. *)
let audit_one_store ~seed ~budget (module M : Timer_store.S) =
  Softtimer.set_default_check_budget budget;
  Fun.protect
    ~finally:(fun () -> Softtimer.set_default_check_budget max_int)
    (fun () ->
      let e = Engine.create () in
      let m = Machine.create e in
      let st = Softtimer.attach ~store:(module M) m in
      let tr = Trace.create ~capacity:262_144 () in
      Trace.install tr;
      Fun.protect ~finally:Trace.uninstall (fun () ->
          start_triggers m seed;
          let rng = Prng.create ~seed:(seed + 1) in
          let rec client n _now =
            if n < 80 then begin
              let d = 20.0 +. Dist.draw (Dist.Exponential 80.0) rng in
              let h = Softtimer.schedule_after st (us d) (fun _ -> ()) in
              if Prng.int rng 4 = 0 then Softtimer.cancel st h;
              ignore (Softtimer.schedule_after st (us 30.0) (client (n + 1)) : Softtimer.handle)
            end
          in
          client 0 Time_ns.zero;
          Engine.run_until e (Time_ns.of_ms 8.0);
          Softtimer.detach st;
          let da = Delay_audit.collect tr in
          Trace.dropped tr = 0
          && Delay_audit.violations da = 0
          && Delay_audit.fired da
             = Delay_audit.ontime da + Delay_audit.late da + Delay_audit.untracked da
          && Delay_audit.untracked da = 0
          && List.for_all
               (fun x ->
                 Int64.equal x.Delay_audit.x_delay
                   (Array.fold_left Int64.add 0L x.Delay_audit.x_segs))
               (Delay_audit.exemplars da)))

let test_audit_conservation_property =
  QCheck.Test.make ~name:"delay-audit conservation (all stores, random budgets)" ~count:15
    QCheck.(pair (int_range 1 1_000) (int_range 1 4))
    (fun (seed, budget) ->
      List.for_all (audit_one_store ~seed ~budget) Store_registry.all)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "softtimer"
    [
      ( "facility",
        [
          Alcotest.test_case "API constants" `Quick test_api_constants;
          Alcotest.test_case "measure_time advances" `Quick test_measure_time_advances;
          Alcotest.test_case "fires at trigger state" `Quick test_event_fires_at_trigger;
          Alcotest.test_case "backup bounds delay" `Quick test_backup_clock_bounds_delay;
          Alcotest.test_case "cancel" `Quick test_cancel_prevents_firing;
          Alcotest.test_case "one facility per machine" `Quick test_single_facility_per_machine;
          Alcotest.test_case "detach" `Quick test_detach_stops_firing;
          Alcotest.test_case "negative ticks rejected" `Quick test_negative_ticks_rejected;
          Alcotest.test_case "delay recording" `Quick test_delay_recording;
          Alcotest.test_case "idle cpu rescues busy machine" `Quick
            test_idle_cpu_rescues_busy_machine;
          qc test_bounds_property;
        ] );
      ("delay_audit", [ qc test_audit_conservation_property ]);
      ( "rate_clock",
        [
          Alcotest.test_case "converges to target rate" `Quick test_rate_clock_converges_to_target;
          Alcotest.test_case "respects min interval" `Quick test_rate_clock_respects_min_interval;
          Alcotest.test_case "train end and kick" `Quick test_rate_clock_train_ends_and_kicks;
          Alcotest.test_case "stop" `Quick test_rate_clock_stop;
          Alcotest.test_case "invalid args" `Quick test_rate_clock_invalid_args;
          Alcotest.test_case "two clocks, two rates" `Quick test_two_clocks_different_rates;
          Alcotest.test_case "memory bounded at 1e6 sends" `Quick test_rate_clock_memory_bounded;
        ] );
      ( "hw_pacer",
        [
          Alcotest.test_case "paces at interval" `Quick test_hw_pacer_paces_at_interval;
          Alcotest.test_case "pays interrupt cost" `Quick test_hw_pacer_pays_interrupt_cost;
          Alcotest.test_case "stop" `Quick test_hw_pacer_stop;
        ] );
      ( "net_poll",
        [
          Alcotest.test_case "adapts toward quota" `Quick test_net_poll_adapts_interval;
          Alcotest.test_case "bounds respected / stop" `Quick test_net_poll_bounds_respected;
          Alcotest.test_case "invalid quota" `Quick test_net_poll_invalid_quota;
        ] );
      ( "delay_probe",
        [
          Alcotest.test_case "gap recorder filters" `Quick test_gap_recorder_filters;
          Alcotest.test_case "source fractions" `Quick test_gap_recorder_source_fractions;
          Alcotest.test_case "event delay probe" `Quick test_event_delay_probe;
        ] );
    ]
