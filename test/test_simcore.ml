(* Tests for the simulation substrate: time, PRNG, distributions, heap,
   engine, statistics, histograms, series and table formatting. *)

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Time_ns *)

let test_time_conversions () =
  check_float "us roundtrip" 12.5 (Time_ns.to_us (Time_ns.of_us 12.5));
  check_float "ms roundtrip" 3.25 (Time_ns.to_ms (Time_ns.of_ms 3.25));
  check_float_eps 1e-6 "sec roundtrip" 1.5 (Time_ns.to_sec (Time_ns.of_sec 1.5));
  Alcotest.(check int64) "of_ns" 42L (Time_ns.of_ns 42);
  Alcotest.(check int64) "of_us rounds" 1_500L (Time_ns.of_us 1.5)

let test_time_arithmetic () =
  let t = Time_ns.(zero + Time_ns.of_us 10.0) in
  Alcotest.(check int64) "add" 10_000L t;
  Alcotest.(check int64) "sub" 10_000L Time_ns.(t - Time_ns.zero);
  Alcotest.(check int64) "mul" 30_000L (Time_ns.mul (Time_ns.of_us 10.0) 3);
  Alcotest.(check int64) "divide" 5_000L (Time_ns.divide (Time_ns.of_us 10.0) 2);
  Alcotest.(check int64) "scale" 25_000L (Time_ns.scale (Time_ns.of_us 10.0) 2.5);
  Alcotest.(check bool) "lt" true Time_ns.(zero < t);
  Alcotest.(check bool) "ge" true Time_ns.(t >= t);
  Alcotest.(check int64) "min" Time_ns.zero (Time_ns.min t Time_ns.zero);
  Alcotest.(check int64) "max" t (Time_ns.max t Time_ns.zero)

let test_time_pp () =
  Alcotest.(check string) "ns" "500ns" (Time_ns.to_string 500L);
  Alcotest.(check string) "us" "12.50us" (Time_ns.to_string (Time_ns.of_us 12.5));
  Alcotest.(check string) "ms" "3.000ms" (Time_ns.to_string (Time_ns.of_ms 3.0));
  Alcotest.(check string) "s" "2.000s" (Time_ns.to_string (Time_ns.of_sec 2.0))

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.bits64 a) (Prng.bits64 b) then incr same
  done;
  Alcotest.(check bool) "different streams" true (!same < 2)

let test_prng_float_range () =
  let rng = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Prng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done;
  for _ = 1 to 1000 do
    let x = Prng.float_range rng 5.0 7.0 in
    Alcotest.(check bool) "in [5,7)" true (x >= 5.0 && x < 7.0)
  done

let test_prng_int_bounds () =
  let rng = Prng.create ~seed:4 in
  let seen = Array.make 10 false in
  for _ = 1 to 1000 do
    let x = Prng.int rng 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10);
    seen.(x) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen);
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_copy_replays () =
  let a = Prng.create ~seed:5 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  for _ = 1 to 20 do
    Alcotest.(check int64) "copy replays" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_split_independent () =
  let a = Prng.create ~seed:6 in
  let b = Prng.split a in
  let x = Prng.bits64 a and y = Prng.bits64 b in
  Alcotest.(check bool) "split differs" true (not (Int64.equal x y))

let test_prng_shuffle_permutes () =
  let rng = Prng.create ~seed:7 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Dist *)

let mean_of_draws d seed n =
  let rng = Prng.create ~seed in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Dist.draw d rng
  done;
  !acc /. float_of_int n

let test_dist_constant () =
  check_float "constant" 4.2 (mean_of_draws (Dist.Constant 4.2) 1 10)

let test_dist_means_match_analytic () =
  let cases =
    [
      Dist.Uniform (2.0, 6.0);
      Dist.Exponential 13.0;
      Dist.Erlang { k = 3; mean = 9.0 };
      Dist.Lognormal { mu = 1.0; sigma = 0.5 };
      Dist.Pareto { scale = 2.0; shape = 3.0 };
      Dist.Mixture [ (1.0, Dist.Constant 2.0); (3.0, Dist.Constant 6.0) ];
      Dist.Shifted (5.0, Dist.Exponential 2.0);
    ]
  in
  List.iteri
    (fun i d ->
      let analytic = Dist.mean d in
      let empirical = mean_of_draws d (100 + i) 60_000 in
      let tol = 0.05 *. analytic in
      Alcotest.(check bool)
        (Printf.sprintf "case %d: |%g - %g| < %g" i empirical analytic tol)
        true
        (Float.abs (empirical -. analytic) < tol))
    cases

let test_dist_non_negative =
  QCheck.Test.make ~name:"draws are non-negative" ~count:500
    QCheck.(pair small_int (float_range 0.1 50.0))
    (fun (seed, mean) ->
      let rng = Prng.create ~seed in
      let d =
        Dist.Mixture [ (1.0, Dist.Exponential mean); (1.0, Dist.Uniform (-5.0, 5.0)) ]
      in
      Dist.draw d rng >= 0.0)

let test_dist_pareto_infinite_mean () =
  Alcotest.(check bool) "shape<=1 -> infinite mean" true
    (Float.is_integer (Dist.mean (Dist.Pareto { scale = 1.0; shape = 0.9 }))
     = Float.is_integer infinity
    && Dist.mean (Dist.Pareto { scale = 1.0; shape = 0.9 }) = infinity)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7; 4; 6; 0 ];
  Alcotest.(check int) "length" 10 (Heap.length h);
  let drained = List.init 10 (fun _ -> Heap.pop_exn h) in
  Alcotest.(check (list int)) "sorted drain" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] drained;
  Alcotest.(check bool) "empty after" true (Heap.is_empty h)

let test_heap_peek_and_clear () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Heap.push h 3;
  Heap.push h 1;
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h);
  Alcotest.check_raises "pop_exn empty" (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let test_heap_to_sorted_nondestructive () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 4; 2; 9 ];
  Alcotest.(check (list int)) "sorted view" [ 2; 4; 9 ] (Heap.to_sorted_list h);
  Alcotest.(check int) "still populated" 3 (Heap.length h)

let test_heap_matches_sort =
  QCheck.Test.make ~name:"heap drain = List.sort" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  let at us tag = ignore (Engine.schedule_at e (Time_ns.of_us us) (fun () -> log := tag :: !log) : Engine.handle) in
  at 30.0 "c";
  at 10.0 "a";
  at 20.0 "b";
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int64) "clock at last event" (Time_ns.of_us 30.0) (Engine.now e)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  let t = Time_ns.of_us 5.0 in
  List.iter
    (fun tag -> ignore (Engine.schedule_at e t (fun () -> log := tag :: !log) : Engine.handle))
    [ "1"; "2"; "3" ];
  Engine.run e;
  Alcotest.(check (list string)) "insertion order among ties" [ "1"; "2"; "3" ] (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule_at e (Time_ns.of_us 1.0) (fun () -> fired := true) in
  Alcotest.(check bool) "scheduled" true (Engine.is_scheduled e h);
  Alcotest.(check int) "pending 1" 1 (Engine.pending e);
  Engine.cancel e h;
  Alcotest.(check int) "pending 0" 0 (Engine.pending e);
  Engine.run e;
  Alcotest.(check bool) "not fired" false !fired;
  Engine.cancel e h (* double cancel is a no-op *)

let test_engine_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore
      (Engine.schedule_at e (Time_ns.of_us (float_of_int i)) (fun () -> incr count)
        : Engine.handle)
  done;
  Engine.run_until e (Time_ns.of_us 5.0);
  Alcotest.(check int) "five fired" 5 !count;
  Alcotest.(check int64) "clock = limit" (Time_ns.of_us 5.0) (Engine.now e);
  Engine.run_until e (Time_ns.of_us 100.0);
  Alcotest.(check int) "rest fired" 10 !count;
  Alcotest.(check int64) "clock = later limit" (Time_ns.of_us 100.0) (Engine.now e)

let test_engine_schedule_from_handler () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule_at e (Time_ns.of_us 1.0) (fun () ->
         log := "outer" :: !log;
         ignore
           (Engine.schedule_after e 0L (fun () -> log := "inner" :: !log) : Engine.handle))
      : Engine.handle);
  Engine.run e;
  Alcotest.(check (list string)) "nested events run" [ "outer"; "inner" ] (List.rev !log)

let test_engine_past_clamped () =
  let e = Engine.create () in
  ignore (Engine.schedule_at e (Time_ns.of_us 10.0) (fun () -> ()) : Engine.handle);
  Engine.run e;
  let fired_at = ref Time_ns.zero in
  ignore
    (Engine.schedule_at e (Time_ns.of_us 1.0) (fun () -> fired_at := Engine.now e)
      : Engine.handle);
  Engine.run e;
  Alcotest.(check int64) "clamped to now" (Time_ns.of_us 10.0) !fired_at

(* The determinism contract (engine.mli): FIFO among simultaneous
   events must hold even when handlers insert more events at the
   current instant — insertion order is the only tie-breaker. *)
let test_engine_fifo_ties_with_handler_inserts () =
  let e = Engine.create () in
  let log = ref [] in
  let t = Time_ns.of_us 5.0 in
  ignore
    (Engine.schedule_at e t (fun () ->
         log := "a" :: !log;
         (* Same-instant insert: runs after the already-queued ties. *)
         ignore (Engine.schedule_at e t (fun () -> log := "a2" :: !log) : Engine.handle))
      : Engine.handle);
  ignore (Engine.schedule_at e t (fun () -> log := "b" :: !log) : Engine.handle);
  ignore (Engine.schedule_at e t (fun () -> log := "c" :: !log) : Engine.handle);
  Engine.run e;
  Alcotest.(check (list string))
    "handler-inserted tie runs last, in insertion order" [ "a"; "b"; "c"; "a2" ]
    (List.rev !log);
  Alcotest.(check int64) "clock did not advance past the tie" t (Engine.now e)

(* Scheduling in the past from inside a handler clamps to the current
   instant: the event runs at [now], and observed time never moves
   backwards. *)
let test_engine_past_clamp_in_handler () =
  let e = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.schedule_at e (Time_ns.of_us 10.0) (fun () ->
         times := Engine.now e :: !times;
         ignore
           (Engine.schedule_at e (Time_ns.of_us 2.0) (fun () ->
                times := Engine.now e :: !times)
             : Engine.handle))
      : Engine.handle);
  Engine.run e;
  (match List.rev !times with
  | [ outer; clamped ] ->
    Alcotest.(check int64) "outer at 10us" (Time_ns.of_us 10.0) outer;
    Alcotest.(check int64) "past event clamped to now" (Time_ns.of_us 10.0) clamped
  | _ -> Alcotest.fail "expected exactly two events");
  Alcotest.(check int64) "clock stayed at 10us" (Time_ns.of_us 10.0) (Engine.now e)

(* The whole contract at once: two engine runs driven by the same Prng
   seed produce identical event sequences (ids and timestamps), even
   with coarse timestamps forcing many FIFO ties and handlers drawing
   from the stream / spawning recursively. *)
let engine_replay_run seed =
  let rng = Prng.create ~seed in
  let e = Engine.create () in
  let log = ref [] in
  let next_id = ref 0 in
  let rec spawn depth =
    let id = !next_id in
    incr next_id;
    (* Whole-microsecond delays from a tiny range: collisions abound. *)
    let delay = Time_ns.of_us (float_of_int (Prng.int rng 20)) in
    ignore
      (Engine.schedule_after e delay (fun () ->
           log := (id, Engine.now e) :: !log;
           if depth > 0 && Prng.float rng < 0.7 then begin
             spawn (depth - 1);
             if Prng.bool rng then spawn (depth - 1)
           end)
        : Engine.handle)
  in
  for _ = 1 to 20 do
    spawn 3
  done;
  Engine.run e;
  List.rev !log

let test_engine_replay_deterministic =
  QCheck.Test.make ~name:"same seed => identical event sequence" ~count:50 QCheck.small_int
    (fun seed ->
      let a = engine_replay_run seed and b = engine_replay_run seed in
      List.length a > 20 && a = b)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_online_moments () =
  let o = Stats.Online.create () in
  List.iter (Stats.Online.add o) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Stats.Online.count o);
  check_float_eps 1e-9 "mean" 5.0 (Stats.Online.mean o);
  check_float_eps 1e-9 "variance" (32.0 /. 7.0) (Stats.Online.variance o);
  check_float "min" 2.0 (Stats.Online.min o);
  check_float "max" 9.0 (Stats.Online.max o);
  check_float "sum" 40.0 (Stats.Online.sum o)

let test_online_merge () =
  let xs = List.init 100 (fun i -> float_of_int i *. 0.37) in
  let a = Stats.Online.create () and b = Stats.Online.create () and full = Stats.Online.create () in
  List.iteri (fun i x -> Stats.Online.add (if i mod 2 = 0 then a else b) x; Stats.Online.add full x) xs;
  let merged = Stats.Online.merge a b in
  Alcotest.(check int) "count" (Stats.Online.count full) (Stats.Online.count merged);
  check_float_eps 1e-9 "mean" (Stats.Online.mean full) (Stats.Online.mean merged);
  check_float_eps 1e-6 "variance" (Stats.Online.variance full) (Stats.Online.variance merged)

let test_sample_percentiles () =
  let s = Stats.Sample.create () in
  for i = 1 to 101 do
    Stats.Sample.add s (float_of_int i)
  done;
  check_float "median" 51.0 (Stats.Sample.median s);
  check_float "p0" 1.0 (Stats.Sample.percentile s 0.0);
  check_float "p100" 101.0 (Stats.Sample.percentile s 100.0);
  check_float "p25" 26.0 (Stats.Sample.percentile s 25.0)

let test_sample_fraction_above () =
  let s = Stats.Sample.create () in
  List.iter (Stats.Sample.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check_float "above 2" 0.5 (Stats.Sample.fraction_above s 2.0);
  check_float "above 0" 1.0 (Stats.Sample.fraction_above s 0.0);
  check_float "above 4" 0.0 (Stats.Sample.fraction_above s 4.0);
  check_float "empty" 0.0 (Stats.Sample.fraction_above (Stats.Sample.create ()) 1.0)

(* Boundary cases: percentile at the extremes, fraction_above at exact
   observation values, and the degenerate single-element sample. *)
let test_sample_boundary_cases () =
  let one = Stats.Sample.create () in
  Stats.Sample.add one 7.5;
  check_float "p0 of one" 7.5 (Stats.Sample.percentile one 0.0);
  check_float "p100 of one" 7.5 (Stats.Sample.percentile one 100.0);
  check_float "p50 of one" 7.5 (Stats.Sample.percentile one 50.0);
  check_float "above just below" 1.0 (Stats.Sample.fraction_above one 7.4999);
  check_float "above itself (strict)" 0.0 (Stats.Sample.fraction_above one 7.5);
  let s = Stats.Sample.create () in
  List.iter (Stats.Sample.add s) [ 10.0; 20.0; 20.0; 30.0 ];
  check_float "p0 is the min" 10.0 (Stats.Sample.percentile s 0.0);
  check_float "p100 is the max" 30.0 (Stats.Sample.percentile s 100.0);
  check_float "above duplicate value" 0.25 (Stats.Sample.fraction_above s 20.0);
  check_float "above below-min" 1.0 (Stats.Sample.fraction_above s 5.0);
  check_float "above above-max" 0.0 (Stats.Sample.fraction_above s 31.0)

let test_sample_clear () =
  let s = Stats.Sample.create () in
  List.iter (Stats.Sample.add s) [ 1.0; 2.0; 3.0 ];
  Stats.Sample.clear s;
  Alcotest.(check int) "count 0" 0 (Stats.Sample.count s);
  check_float "empty fraction" 0.0 (Stats.Sample.fraction_above s 0.0);
  Stats.Sample.add s 9.0;
  Alcotest.(check int) "count after re-add" 1 (Stats.Sample.count s);
  check_float "median after re-add" 9.0 (Stats.Sample.median s)

let test_sample_matches_online =
  QCheck.Test.make ~name:"Sample mean/stddev = Online mean/stddev" ~count:100
    QCheck.(list_of_size Gen.(int_range 2 50) (float_range (-100.) 100.))
    (fun xs ->
      let s = Stats.Sample.create () and o = Stats.Online.create () in
      List.iter (fun x -> Stats.Sample.add s x; Stats.Online.add o x) xs;
      Float.abs (Stats.Sample.mean s -. Stats.Online.mean o) < 1e-9
      && Float.abs (Stats.Sample.stddev s -. Stats.Online.stddev o) < 1e-9)

let test_sample_sorted_cached_after_add () =
  let s = Stats.Sample.create () in
  List.iter (Stats.Sample.add s) [ 3.0; 1.0 ];
  check_float "median 2" 2.0 (Stats.Sample.median s);
  Stats.Sample.add s 100.0;
  check_float "median updates after add" 3.0 (Stats.Sample.median s)

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.7; 9.9; 10.0; 25.0; -1.0 ];
  Alcotest.(check int) "count" 7 (Histogram.count h);
  Alcotest.(check int) "bin 0 excludes x < lo" 1 (Histogram.bin_count h 0);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow_count h);
  Alcotest.(check int) "bin 1" 2 (Histogram.bin_count h 1);
  Alcotest.(check int) "bin 9" 1 (Histogram.bin_count h 9);
  Alcotest.(check int) "overflow" 2 (Histogram.bin_count h 10)

let test_histogram_cdf () =
  let h = Histogram.create ~lo:0.0 ~hi:100.0 ~bins:100 in
  for i = 0 to 99 do
    Histogram.add h (float_of_int i +. 0.5)
  done;
  check_float_eps 1e-9 "cdf at 50" 0.5 (Histogram.cdf_at h 50.0);
  check_float_eps 1e-9 "cdf at 100" 1.0 (Histogram.cdf_at h 100.0);
  let pts = Histogram.cdf_points h in
  Alcotest.(check int) "points = bins+2 (underflow + bins + overflow)" 102 (List.length pts);
  let last_y = snd (List.nth pts 101) in
  check_float_eps 1e-9 "cdf reaches 1" 1.0 last_y

(* Regression: values below [lo] used to be folded into bin 0, which
   inflated the first CDF step; they must go to a dedicated underflow
   bucket that the CDF only counts at or above [lo]. *)
let test_histogram_underflow () =
  let h = Histogram.create ~lo:10.0 ~hi:20.0 ~bins:10 in
  List.iter (Histogram.add h) [ -5.0; 0.0; 9.99; 10.5; 19.0; 25.0 ];
  Alcotest.(check int) "count includes out-of-range" 6 (Histogram.count h);
  Alcotest.(check int) "underflow holds x < lo" 3 (Histogram.underflow_count h);
  Alcotest.(check int) "bin 0 holds only in-range values" 1 (Histogram.bin_count h 0);
  Alcotest.(check int) "overflow" 1 (Histogram.bin_count h 10);
  (* Below lo the in-range CDF contributes nothing... *)
  check_float_eps 1e-9 "cdf below lo" 0.0 (Histogram.cdf_at h 9.0);
  (* ...at lo the whole underflow bucket is <= x... *)
  check_float_eps 1e-9 "cdf at lo counts underflow" 0.5 (Histogram.cdf_at h 10.0);
  (* ...and the first in-range step is underflow + bin 0, not doubled. *)
  check_float_eps 1e-9 "cdf after bin 0" (4.0 /. 6.0) (Histogram.cdf_at h 11.0);
  let pts = Histogram.cdf_points h in
  let x0, y0 = List.hd pts in
  check_float_eps 1e-9 "first point sits at lo" 10.0 x0;
  check_float_eps 1e-9 "first point is the underflow fraction" 0.5 y0;
  check_float_eps 1e-9 "last point reaches 1" 1.0 (snd (List.nth pts (List.length pts - 1)))

let test_histogram_render_smoke () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Histogram.add h) [ 1.0; 2.0; 3.0 ];
  let out = Histogram.render_ascii ~width:20 ~height:5 ~series:[ ("x", h) ] () in
  Alcotest.(check bool) "mentions legend" true
    (String.length out > 0
    && String.split_on_char '\n' out |> List.exists (fun l -> String.trim l = "* x"))

let test_histogram_invalid_args () =
  Alcotest.check_raises "bins<=0" (Invalid_argument "Histogram.create: bins must be positive")
    (fun () -> ignore (Histogram.create ~lo:0.0 ~hi:1.0 ~bins:0));
  Alcotest.check_raises "hi<=lo" (Invalid_argument "Histogram.create: hi must exceed lo")
    (fun () -> ignore (Histogram.create ~lo:1.0 ~hi:1.0 ~bins:4))

(* ------------------------------------------------------------------ *)
(* Series *)

let test_series_windowed_medians () =
  let s = Series.create () in
  (* Window 1: 1,2,3 at t=0..0.2ms; window 2: 10,20 at t=1.1,1.2ms. *)
  Series.add s Time_ns.zero 1.0;
  Series.add s (Time_ns.of_ms 0.1) 3.0;
  Series.add s (Time_ns.of_ms 0.2) 2.0;
  Series.add s (Time_ns.of_ms 1.1) 10.0;
  Series.add s (Time_ns.of_ms 1.2) 20.0;
  let ms = Series.windowed_medians s ~window:(Time_ns.of_ms 1.0) in
  Alcotest.(check int) "two windows" 2 (List.length ms);
  check_float "median w1" 2.0 (snd (List.nth ms 0));
  check_float "median w2" 15.0 (snd (List.nth ms 1));
  let means = Series.windowed_means s ~window:(Time_ns.of_ms 1.0) in
  check_float "mean w1" 2.0 (snd (List.nth means 0))

let test_series_rejects_out_of_order () =
  let s = Series.create () in
  Series.add s (Time_ns.of_ms 1.0) 1.0;
  Alcotest.check_raises "non-monotone"
    (Invalid_argument "Series.add: timestamps must be non-decreasing") (fun () ->
      Series.add s Time_ns.zero 2.0)

let test_series_empty_windows_skipped () =
  let s = Series.create () in
  Series.add s Time_ns.zero 1.0;
  Series.add s (Time_ns.of_ms 5.0) 9.0;
  let ms = Series.windowed_medians s ~window:(Time_ns.of_ms 1.0) in
  Alcotest.(check int) "only non-empty windows" 2 (List.length ms)

(* ------------------------------------------------------------------ *)
(* Tablefmt *)

let test_tablefmt_renders () =
  let t = Tablefmt.create ~title:"T" ~columns:[ ("a", Tablefmt.Left); ("b", Tablefmt.Right) ] in
  Tablefmt.add_row t [ "x"; "1" ];
  Tablefmt.add_rule t;
  Tablefmt.add_row t [ "yy"; "22" ];
  let out = Tablefmt.render t in
  Alcotest.(check bool) "has title" true (String.length out > 0 && String.sub out 0 1 = "T");
  Alcotest.(check bool) "contains row" true
    (String.split_on_char '\n' out |> List.exists (fun l -> l = "| yy | 22 |"))

let test_tablefmt_arity_checked () =
  let t = Tablefmt.create ~title:"T" ~columns:[ ("a", Tablefmt.Left) ] in
  Alcotest.check_raises "wrong arity" (Invalid_argument "Tablefmt.add_row: wrong number of cells")
    (fun () -> Tablefmt.add_row t [ "x"; "y" ])

let test_tablefmt_cells () =
  Alcotest.(check string) "float" "3.14" (Tablefmt.cell_f 3.14159);
  Alcotest.(check string) "float decimals" "3.1" (Tablefmt.cell_f ~decimals:1 3.14159);
  Alcotest.(check string) "nan" "-" (Tablefmt.cell_f nan);
  Alcotest.(check string) "int" "42" (Tablefmt.cell_i 42);
  Alcotest.(check string) "pct" "25.3%" (Tablefmt.cell_pct 0.253)

(* ------------------------------------------------------------------ *)
(* Additional edge cases *)

let test_engine_limit_before_first_event () =
  let e = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule_at e (Time_ns.of_us 100.0) (fun () -> fired := true) : Engine.handle);
  Engine.run_until e (Time_ns.of_us 50.0);
  Alcotest.(check bool) "not yet" false !fired;
  Alcotest.(check int64) "clock at limit" (Time_ns.of_us 50.0) (Engine.now e);
  Alcotest.(check int) "still pending" 1 (Engine.pending e)

let test_engine_negative_after_clamped () =
  let e = Engine.create () in
  let at = ref None in
  ignore (Engine.schedule_after e (-5L) (fun () -> at := Some (Engine.now e)) : Engine.handle);
  Engine.run e;
  Alcotest.(check (option int64)) "clamped to now" (Some Time_ns.zero) !at

let test_engine_cancel_head_then_run_until () =
  let e = Engine.create () in
  let log = ref [] in
  let h = Engine.schedule_at e (Time_ns.of_us 10.0) (fun () -> log := "head" :: !log) in
  ignore (Engine.schedule_at e (Time_ns.of_us 20.0) (fun () -> log := "tail" :: !log) : Engine.handle);
  Engine.cancel e h;
  Engine.run_until e (Time_ns.of_us 100.0);
  Alcotest.(check (list string)) "cancelled head skipped" [ "tail" ] (List.rev !log)

let test_dist_span_is_us () =
  let rng = Prng.create ~seed:1 in
  Alcotest.(check int64) "span interprets us" (Time_ns.of_us 42.0)
    (Dist.span (Dist.Constant 42.0) rng)

let test_dist_empty_mixture_raises () =
  let rng = Prng.create ~seed:1 in
  Alcotest.check_raises "empty mixture" (Invalid_argument "Dist.draw: empty mixture")
    (fun () -> ignore (Dist.draw (Dist.Mixture []) rng))

let test_dist_shifted_negative_clamps () =
  let rng = Prng.create ~seed:1 in
  Alcotest.(check (float 1e-9)) "clamped at zero" 0.0
    (Dist.draw (Dist.Shifted (-10.0, Dist.Constant 1.0)) rng)

let test_histogram_cdf_points_monotone =
  QCheck.Test.make ~name:"cdf points are monotone in [0,1]" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) (float_range (-50.) 250.))
    (fun xs ->
      let h = Histogram.create ~lo:0.0 ~hi:100.0 ~bins:20 in
      List.iter (Histogram.add h) xs;
      let pts = List.map snd (Histogram.cdf_points h) in
      let rec mono = function
        | a :: b :: rest -> a <= b +. 1e-12 && mono (b :: rest)
        | _ -> true
      in
      mono pts
      && List.for_all (fun y -> y >= 0.0 && y <= 1.0 +. 1e-12) pts
      && Float.abs (List.nth pts (List.length pts - 1) -. 1.0) < 1e-9)

let test_stats_single_point () =
  let s = Stats.Sample.create () in
  Stats.Sample.add s 5.0;
  Alcotest.(check (float 1e-9)) "median of one" 5.0 (Stats.Sample.median s);
  Alcotest.(check (float 1e-9)) "p99 of one" 5.0 (Stats.Sample.percentile s 99.0);
  Alcotest.(check bool) "stddev of one is nan" true (Float.is_nan (Stats.Sample.stddev s))

let test_stats_percentile_errors () =
  let s = Stats.Sample.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Stats.Sample.percentile: empty sample")
    (fun () -> ignore (Stats.Sample.percentile s 50.0));
  Stats.Sample.add s 1.0;
  Alcotest.check_raises "out of range" (Invalid_argument "Stats.Sample.percentile: p out of range")
    (fun () -> ignore (Stats.Sample.percentile s 101.0))

let test_tablefmt_right_alignment () =
  let t = Tablefmt.create ~title:"T" ~columns:[ ("n", Tablefmt.Right) ] in
  Tablefmt.add_row t [ "1" ];
  Tablefmt.add_row t [ "100" ];
  let lines = String.split_on_char '\n' (Tablefmt.render t) in
  Alcotest.(check bool) "right-justified" true (List.exists (fun l -> l = "|   1 |") lines)

let test_prng_float_range_invalid () =
  let rng = Prng.create ~seed:1 in
  Alcotest.check_raises "hi < lo" (Invalid_argument "Prng.float_range: hi < lo") (fun () ->
      ignore (Prng.float_range rng 2.0 1.0))

(* ------------------------------------------------------------------ *)
(* Eventq (the specialized 4-ary int-keyed heap behind Engine) *)

let test_eventq_pops_sorted =
  QCheck.Test.make ~name:"eventq pops in (time, seq) order" ~count:300
    QCheck.(list_of_size Gen.(int_range 0 200) (int_range 0 50))
    (fun times ->
      let q = Eventq.create ~capacity:4 () in
      List.iteri (fun seq time -> Eventq.push q ~time ~seq ~payload:(seq * 2)) times;
      let expected =
        List.sort compare (List.mapi (fun seq time -> (time, seq, seq * 2)) times)
      in
      Eventq.to_sorted q = expected)

let test_eventq_rebuild_keeps_subset =
  QCheck.Test.make ~name:"eventq rebuild keeps exactly the survivors" ~count:300
    QCheck.(list_of_size Gen.(int_range 0 150) (pair (int_range 0 40) bool))
    (fun entries ->
      let q = Eventq.create ~capacity:4 () in
      List.iteri (fun seq (time, _) -> Eventq.push q ~time ~seq ~payload:seq) entries;
      (* Drop a few minima first so the survivors are a non-trivial
         sub-heap, then rebuild keeping the [true]-flagged seqs. *)
      let drops = List.length entries / 4 in
      let dropped = ref [] in
      for _ = 1 to drops do
        dropped := Eventq.min_seq q :: !dropped;
        Eventq.drop_min q
      done;
      let keep_flag = Array.of_list (List.map snd entries) in
      Eventq.rebuild q ~keep:(fun ~seq ~payload:_ -> keep_flag.(seq));
      let expected =
        List.mapi (fun seq (time, keep) -> (time, seq, keep)) entries
        |> List.filter (fun (_, seq, keep) -> keep && not (List.mem seq !dropped))
        |> List.map (fun (time, seq, _) -> (time, seq, seq))
        |> List.sort compare
      in
      Eventq.to_sorted q = expected)

(* ------------------------------------------------------------------ *)
(* Engine vs reference model *)

(* Obviously-correct reference: a sorted association list of
   (time, tag) fired in lexicographic (time, tag) order — tags are
   issued in scheduling order, so the tie-break doubles as FIFO. *)
module Engine_model = struct
  type t = {
    mutable events : (int * int) list;  (* (time, tag), sorted *)
    mutable clock : int;
    mutable next_tag : int;
  }

  let create () = { events = []; clock = 0; next_tag = 0 }

  let schedule_at m time =
    let time = if time < m.clock then m.clock else time in
    let tag = m.next_tag in
    m.next_tag <- tag + 1;
    m.events <- List.sort compare ((time, tag) :: m.events);
    tag

  let cancel m tag = m.events <- List.filter (fun (_, g) -> g <> tag) m.events
  let is_scheduled m tag = List.exists (fun (_, g) -> g = tag) m.events

  let step m log =
    match m.events with
    | [] -> false
    | (time, tag) :: rest ->
      m.events <- rest;
      if time > m.clock then m.clock <- time;
      log := tag :: !log;
      true

  let run_until m limit log =
    let rec loop () =
      match m.events with
      | (time, tag) :: rest when time <= limit ->
        m.events <- rest;
        if time > m.clock then m.clock <- time;
        log := tag :: !log;
        loop ()
      | _ -> ()
    in
    loop ();
    if limit > m.clock then m.clock <- limit
end

let test_engine_matches_model =
  (* Random op traces (schedule at arbitrary absolute times including
     the past, cancel of arbitrary earlier handles incl. stale ones,
     step, run_until) drive the real engine and the model in lockstep;
     fire order, clock and is_scheduled must agree throughout. *)
  QCheck.Test.make ~name:"engine matches reference model" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 120) (pair (int_range 0 9) (int_range 0 400)))
    (fun ops ->
      let e = Engine.create () in
      let m = Engine_model.create () in
      let real_log = ref [] and model_log = ref [] in
      (* tag -> real handle, in issue order (newest first). *)
      let handles = ref [] in
      let ok = ref true in
      let check b = if not b then ok := false in
      List.iter
        (fun (kind, v) ->
          if !ok then begin
            (match kind with
            | 0 | 1 | 2 | 3 | 4 ->
              let tag = Engine_model.schedule_at m v in
              let h =
                Engine.schedule_at e (Int64.of_int v) (fun () -> real_log := tag :: !real_log)
              in
              handles := (tag, h) :: !handles
            | 5 | 6 ->
              (match !handles with
              | [] -> ()
              | l ->
                let tag, h = List.nth l (v mod List.length l) in
                Engine_model.cancel m tag;
                Engine.cancel e h)
            | 7 | 8 -> check (Engine.step e = Engine_model.step m model_log)
            | _ ->
              Engine.run_until e (Int64.of_int v);
              Engine_model.run_until m v model_log);
            check (Engine.now e = Int64.of_int m.Engine_model.clock);
            check (Engine.pending e = List.length m.Engine_model.events);
            List.iter
              (fun (tag, h) ->
                check (Engine.is_scheduled e h = Engine_model.is_scheduled m tag))
              !handles
          end)
        ops;
      (* Drain both and compare complete fire orders. *)
      while Engine.step e do () done;
      while Engine_model.step m model_log do () done;
      !ok && !real_log = !model_log)

let test_engine_stale_handle_after_reuse () =
  (* A fired/cancelled handle must stay dead even after its pool slot
     is reused by a later event. *)
  let e = Engine.create () in
  let h1 = Engine.schedule_at e 10L (fun () -> ()) in
  Engine.cancel e h1;
  let h2 = Engine.schedule_at e 20L (fun () -> ()) in
  Alcotest.(check bool) "stale handle not scheduled" false (Engine.is_scheduled e h1);
  Alcotest.(check bool) "fresh handle scheduled" true (Engine.is_scheduled e h2);
  Engine.cancel e h1 (* must be a no-op... *);
  Alcotest.(check bool) "no-op on reused slot" true (Engine.is_scheduled e h2);
  Alcotest.(check int) "pending" 1 (Engine.pending e)

let test_engine_churn_residency () =
  (* Lazy cancellation must not accumulate: with 64 live timers being
     cancelled and rescheduled continuously (the rate-based-clocking
     pattern), threshold compaction keeps heap residency O(live). *)
  let e = Engine.create () in
  let handles =
    Array.init 64 (fun i -> Engine.schedule_at e (Int64.of_int (1_000 + i)) (fun () -> ()))
  in
  let max_len = ref 0 in
  for round = 1 to 2_000 do
    for i = 0 to 63 do
      Engine.cancel e handles.(i);
      handles.(i) <-
        Engine.schedule_at e (Int64.of_int (1_000 + (round * 64) + i)) (fun () -> ());
      if Engine.queue_length e > !max_len then max_len := Engine.queue_length e
    done
  done;
  Alcotest.(check int) "live population steady" 64 (Engine.pending e);
  (* Compaction triggers once dead > max 64 (live/1)... bound: live +
     threshold + slack.  128k cancels without compaction would leave
     ~128k entries. *)
  Alcotest.(check bool) "heap residency stays O(live)" true (!max_len <= 256)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "simcore"
    [
      ( "time_ns",
        [
          Alcotest.test_case "conversions" `Quick test_time_conversions;
          Alcotest.test_case "arithmetic" `Quick test_time_arithmetic;
          Alcotest.test_case "pretty-printing" `Quick test_time_pp;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic per seed" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "float ranges" `Quick test_prng_float_range;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "copy replays" `Quick test_prng_copy_replays;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
        ] );
      ( "dist",
        [
          Alcotest.test_case "constant" `Quick test_dist_constant;
          Alcotest.test_case "means match analytic" `Slow test_dist_means_match_analytic;
          Alcotest.test_case "pareto infinite mean" `Quick test_dist_pareto_infinite_mean;
          qc test_dist_non_negative;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "peek and clear" `Quick test_heap_peek_and_clear;
          Alcotest.test_case "sorted view non-destructive" `Quick test_heap_to_sorted_nondestructive;
          qc test_heap_matches_sort;
        ] );
      ( "eventq",
        [
          qc test_eventq_pops_sorted;
          qc test_eventq_rebuild_keeps_subset;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "fifo ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "schedule from handler" `Quick test_engine_schedule_from_handler;
          Alcotest.test_case "past clamped to now" `Quick test_engine_past_clamped;
          Alcotest.test_case "fifo ties incl. handler inserts" `Quick
            test_engine_fifo_ties_with_handler_inserts;
          Alcotest.test_case "past clamp inside handler" `Quick test_engine_past_clamp_in_handler;
          Alcotest.test_case "stale handles after slot reuse" `Quick
            test_engine_stale_handle_after_reuse;
          Alcotest.test_case "churn keeps residency bounded" `Quick test_engine_churn_residency;
          qc test_engine_replay_deterministic;
          qc test_engine_matches_model;
        ] );
      ( "stats",
        [
          Alcotest.test_case "online moments" `Quick test_online_moments;
          Alcotest.test_case "online merge" `Quick test_online_merge;
          Alcotest.test_case "percentiles" `Quick test_sample_percentiles;
          Alcotest.test_case "fraction above" `Quick test_sample_fraction_above;
          Alcotest.test_case "boundary cases" `Quick test_sample_boundary_cases;
          Alcotest.test_case "clear" `Quick test_sample_clear;
          Alcotest.test_case "sorted cache invalidation" `Quick test_sample_sorted_cached_after_add;
          qc test_sample_matches_online;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "cdf" `Quick test_histogram_cdf;
          Alcotest.test_case "underflow bucket" `Quick test_histogram_underflow;
          Alcotest.test_case "render smoke" `Quick test_histogram_render_smoke;
          Alcotest.test_case "invalid args" `Quick test_histogram_invalid_args;
        ] );
      ( "series",
        [
          Alcotest.test_case "windowed medians" `Quick test_series_windowed_medians;
          Alcotest.test_case "rejects out of order" `Quick test_series_rejects_out_of_order;
          Alcotest.test_case "empty windows skipped" `Quick test_series_empty_windows_skipped;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "renders" `Quick test_tablefmt_renders;
          Alcotest.test_case "arity checked" `Quick test_tablefmt_arity_checked;
          Alcotest.test_case "cell formatting" `Quick test_tablefmt_cells;
          Alcotest.test_case "right alignment" `Quick test_tablefmt_right_alignment;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "run_until before first event" `Quick
            test_engine_limit_before_first_event;
          Alcotest.test_case "negative schedule_after" `Quick test_engine_negative_after_clamped;
          Alcotest.test_case "cancelled head skipped" `Quick test_engine_cancel_head_then_run_until;
          Alcotest.test_case "dist span in us" `Quick test_dist_span_is_us;
          Alcotest.test_case "empty mixture raises" `Quick test_dist_empty_mixture_raises;
          Alcotest.test_case "shifted clamps" `Quick test_dist_shifted_negative_clamps;
          Alcotest.test_case "single-point stats" `Quick test_stats_single_point;
          Alcotest.test_case "percentile errors" `Quick test_stats_percentile_errors;
          Alcotest.test_case "float_range invalid" `Quick test_prng_float_range_invalid;
          qc test_histogram_cdf_points_monotone;
        ] );
    ]
