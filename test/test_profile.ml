(* Profiler (lib/obs/profile.ml): attribution arithmetic, the
   conservation invariant on a live machine, the collapsed-stack
   export and the per-trigger dispatch breakdown. *)

let span = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal

(* Run [f] with a fresh installed profiler; always uninstall, so a
   failing test cannot leak an installed sink into later tests. *)
let with_profiler f =
  let p = Profile.create () in
  Profile.install p;
  Fun.protect ~finally:Profile.uninstall (fun () -> f p)

(* ------------------------------------------------------------------ *)
(* Attribution arithmetic.                                             *)

let test_leaf_charges () =
  with_profiler (fun p ->
      let a = Profile.intern [ "kernel"; "work" ] in
      let b = Profile.intern [ "interrupt"; "nic"; "save_restore" ] in
      Profile.charge a ~cpu:0 1_500L;
      Profile.charge a ~cpu:0 500L;
      Profile.charge b ~cpu:2 250L;
      Alcotest.(check span) "a self" 2_000L (Profile.self_ns p [ "kernel"; "work" ]);
      Alcotest.(check int) "a charges" 2 (Profile.charges p [ "kernel"; "work" ]);
      Alcotest.(check span) "b self" 250L
        (Profile.self_ns p [ "interrupt"; "nic"; "save_restore" ]);
      Alcotest.(check span) "subtree rolls up" 250L (Profile.subtree_ns p [ "interrupt" ]);
      Alcotest.(check int) "cpu rows" 3 (Profile.cpu_count p);
      Alcotest.(check span) "cpu0" 2_000L (Profile.attributed_ns p ~cpu:0);
      Alcotest.(check span) "cpu1" 0L (Profile.attributed_ns p ~cpu:1);
      Alcotest.(check span) "cpu2" 250L (Profile.attributed_ns p ~cpu:2);
      Alcotest.(check span) "total" 2_250L (Profile.total_attributed_ns p);
      let roots_sum =
        List.fold_left (fun acc (_, ns) -> Int64.add acc ns) 0L (Profile.roots_ns p)
      in
      Alcotest.(check span) "roots_ns sums to total" 2_250L roots_sum)

(* A seq splits one quantum across categories, resuming where it left
   off when the quantum is delivered in several charges (preemption). *)
let test_seq_split_across_preemption () =
  with_profiler (fun p ->
      let a = Profile.intern [ "syscall"; "entry" ] in
      let b = Profile.intern [ "syscall"; "dispatch" ] in
      let tail = Profile.intern [ "syscall"; "body" ] in
      let seq = Profile.seq [ (a, 3_000L); (b, 2_000L) ] ~tail in
      (* One 7.5 us quantum charged as 2 + 1.5 + 4 us. *)
      Profile.charge seq ~cpu:0 2_000L;
      Profile.charge seq ~cpu:0 1_500L;
      Profile.charge seq ~cpu:0 4_000L;
      Alcotest.(check span) "entry part" 3_000L (Profile.self_ns p [ "syscall"; "entry" ]);
      Alcotest.(check span) "dispatch part" 2_000L
        (Profile.self_ns p [ "syscall"; "dispatch" ]);
      Alcotest.(check span) "tail gets the rest" 2_500L
        (Profile.self_ns p [ "syscall"; "body" ]);
      Alcotest.(check span) "nothing lost" 7_500L (Profile.total_attributed_ns p))

let test_collapsed_golden () =
  with_profiler (fun p ->
      Profile.charge (Profile.intern [ "kernel"; "work" ]) ~cpu:0 1_500L;
      Profile.charge (Profile.intern [ "interrupt"; "nic"; "save_restore" ]) ~cpu:0 250L;
      Profile.charge (Profile.intern [ "kernel" ]) ~cpu:1 40L;
      Alcotest.(check string) "collapsed stacks"
        "cpu0;interrupt;nic;save_restore 250\ncpu0;kernel;work 1500\ncpu1;kernel 40\n"
        (Profile.to_collapsed p))

(* ------------------------------------------------------------------ *)
(* Conservation on a live machine: whatever mix of quanta, triggers,   *)
(* interrupts and soft-timer activity, the attributed total equals the *)
(* machine's busy time exactly — no charge path escapes attribution.   *)

let test_conservation_property =
  QCheck.Test.make ~name:"attribution conserves Cpu.busy_ns" ~count:60
    QCheck.(
      list_of_size
        Gen.(int_range 1 25)
        (quad (int_range 0 4) (int_range 0 80) (int_range 0 400) (int_range 0 7)))
    (fun jobs ->
      with_profiler (fun p ->
          let e = Engine.create () in
          let m = Machine.create e in
          let st = Softtimer.attach m in
          Machine.start_interrupt_clock m;
          let line =
            Machine.interrupt_line m ~name:"disk0" ~source:Trigger.Dev_intr
              ~handler:(fun _ -> ())
              ()
          in
          List.iter
            (fun (prio, work_us, at_us, kind_ix) ->
              let trigger = List.nth_opt Trigger.all kind_ix in
              ignore
                (Engine.schedule_at e
                   (Time_ns.of_us (float_of_int at_us))
                   (fun () ->
                     if kind_ix = 7 then ignore (Machine.raise_irq m line () : bool)
                     else begin
                       if work_us mod 3 = 0 then
                         ignore
                           (Softtimer.schedule_soft_event st ~ticks:1L (fun _ -> ())
                             : Softtimer.handle);
                       Machine.submit_quantum m ~prio
                         ~work_us:(float_of_int work_us /. 4.0)
                         ~trigger
                         (fun _ -> ())
                     end)
                  : Engine.handle))
            jobs;
          Engine.run_until e (Time_ns.of_us 2_000.0);
          Softtimer.detach st;
          Int64.equal (Profile.attributed_ns p ~cpu:0) (Machine.total_busy_ns m)))

(* ------------------------------------------------------------------ *)
(* Per-trigger dispatch breakdown.                                     *)

let test_dispatch_breakdown () =
  with_profiler (fun p ->
      let before =
        Metrics.dcounter_value (Metrics.dcounter Metrics.default "softtimer.fired")
      in
      let e = Engine.create () in
      let m = Machine.create e in
      let st = Softtimer.attach m in
      for i = 1 to 5 do
        ignore (Softtimer.schedule_soft_event st ~ticks:0L (fun _ -> ()) : Softtimer.handle);
        let kind = if i mod 2 = 0 then Trigger.Syscall else Trigger.Ip_output in
        Machine.submit_quantum m ~prio:Cpu.prio_kernel ~work_us:2.0 ~trigger:(Some kind)
          (fun _ -> ());
        Engine.run_until e Time_ns.(Engine.now e + Time_ns.of_us 50.0)
      done;
      Softtimer.detach st;
      let after =
        Metrics.dcounter_value (Metrics.dcounter Metrics.default "softtimer.fired")
      in
      Alcotest.(check bool) "something fired" true (Softtimer.fired st > 0);
      Alcotest.(check int) "fired_total = softtimer facility count" (Softtimer.fired st)
        (Profile.fired_total p);
      Alcotest.(check int) "fired_total = softtimer.fired metric delta" (after - before)
        (Profile.fired_total p);
      let rows = Profile.dispatch_rows p in
      let row_sum = List.fold_left (fun acc (_, n) -> acc + n) 0 rows in
      Alcotest.(check int) "rows sum to fired_total" (Profile.fired_total p) row_sum;
      List.iter
        (fun (source, fires) ->
          Alcotest.(check bool) (source ^ " is a real trigger source") true
            (List.exists (fun k -> String.equal (Trigger.name k) source) Trigger.all);
          Alcotest.(check bool) (source ^ " fired") true (fires > 0))
        rows)

let () =
  Alcotest.run "profile"
    [
      ( "attribution",
        [
          Alcotest.test_case "leaf charges" `Quick test_leaf_charges;
          Alcotest.test_case "seq split across preemption" `Quick
            test_seq_split_across_preemption;
          Alcotest.test_case "collapsed-stack golden" `Quick test_collapsed_golden;
          QCheck_alcotest.to_alcotest test_conservation_property;
        ] );
      ("dispatch", [ Alcotest.test_case "per-trigger breakdown" `Quick test_dispatch_breakdown ]);
    ]
