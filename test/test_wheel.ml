(* Tests for the hashed timing wheel, including a property-based
   equivalence check against a sorted-list reference implementation. *)

let us = Time_ns.of_us

let collect_fired wheel ~now =
  let fired = ref [] in
  let o = Timing_wheel.fire_due wheel ~now ~limit:max_int (fun due v -> fired := (due, v) :: !fired) in
  (Fire_outcome.fired o, List.rev !fired)

let test_basic_fire () =
  let w = Timing_wheel.create ~tick:(us 10.0) () in
  Alcotest.(check int) "empty" 0 (Timing_wheel.pending w);
  Alcotest.(check (option int64)) "no deadline" None (Timing_wheel.next_deadline w);
  ignore (Timing_wheel.schedule w ~at:(us 25.0) "a" : Timing_wheel.handle);
  ignore (Timing_wheel.schedule w ~at:(us 55.0) "b" : Timing_wheel.handle);
  Alcotest.(check int) "pending 2" 2 (Timing_wheel.pending w);
  Alcotest.(check (option int64)) "earliest" (Some (us 25.0)) (Timing_wheel.next_deadline w);
  let n, fired = collect_fired w ~now:(us 30.0) in
  Alcotest.(check int) "one fired" 1 n;
  Alcotest.(check (list string)) "a fired" [ "a" ] (List.map snd fired);
  Alcotest.(check (option int64)) "next is b" (Some (us 55.0)) (Timing_wheel.next_deadline w);
  let n, fired = collect_fired w ~now:(us 100.0) in
  Alcotest.(check int) "b fired" 1 n;
  Alcotest.(check (list string)) "b" [ "b" ] (List.map snd fired);
  Alcotest.(check int) "drained" 0 (Timing_wheel.pending w)

let test_fire_order_and_ties () =
  let w = Timing_wheel.create ~tick:(us 10.0) () in
  ignore (Timing_wheel.schedule w ~at:(us 40.0) "second" : Timing_wheel.handle);
  ignore (Timing_wheel.schedule w ~at:(us 20.0) "first" : Timing_wheel.handle);
  ignore (Timing_wheel.schedule w ~at:(us 40.0) "third" : Timing_wheel.handle);
  let _, fired = collect_fired w ~now:(us 50.0) in
  Alcotest.(check (list string)) "deadline then insertion order" [ "first"; "second"; "third" ]
    (List.map snd fired)

let test_cancel () =
  let w = Timing_wheel.create ~tick:(us 10.0) () in
  let h = Timing_wheel.schedule w ~at:(us 20.0) "x" in
  ignore (Timing_wheel.schedule w ~at:(us 30.0) "y" : Timing_wheel.handle);
  Timing_wheel.cancel w h;
  Alcotest.(check int) "pending after cancel" 1 (Timing_wheel.pending w);
  Alcotest.(check (option int64)) "min recomputed" (Some (us 30.0)) (Timing_wheel.next_deadline w);
  Timing_wheel.cancel w h;  (* double cancel: no-op *)
  Alcotest.(check int) "still 1" 1 (Timing_wheel.pending w);
  let _, fired = collect_fired w ~now:(us 100.0) in
  Alcotest.(check (list string)) "only y fires" [ "y" ] (List.map snd fired)

let test_far_future_rotations () =
  (* An entry many rotations ahead must not fire early. *)
  let w = Timing_wheel.create ~slots:8 ~tick:(us 10.0) () in
  ignore (Timing_wheel.schedule w ~at:(us 25.0) "near" : Timing_wheel.handle);
  (* 8 slots x 10 us = one rotation is 80 us; 1000 us is 12 rotations out
     and hashes to the same region of the wheel. *)
  ignore (Timing_wheel.schedule w ~at:(us 1_005.0) "far" : Timing_wheel.handle);
  let _, fired = collect_fired w ~now:(us 100.0) in
  Alcotest.(check (list string)) "only near fires" [ "near" ] (List.map snd fired);
  let _, fired = collect_fired w ~now:(us 2_000.0) in
  Alcotest.(check (list string)) "far fires later" [ "far" ] (List.map snd fired)

let test_overdue_schedule_fires () =
  let w = Timing_wheel.create ~tick:(us 10.0) () in
  ignore (collect_fired w ~now:(us 500.0));
  (* Deadline in the past relative to the sweep horizon. *)
  ignore (Timing_wheel.schedule w ~at:(us 100.0) "late" : Timing_wheel.handle);
  let _, fired = collect_fired w ~now:(us 500.0) in
  Alcotest.(check (list string)) "overdue entry still fires" [ "late" ] (List.map snd fired)

let test_schedule_during_fire () =
  let w = Timing_wheel.create ~tick:(us 10.0) () in
  ignore (Timing_wheel.schedule w ~at:(us 20.0) "a" : Timing_wheel.handle);
  let rescheduled = ref false in
  let n =
    Timing_wheel.fire_due w ~now:(us 30.0) ~limit:max_int (fun _ _ ->
        if not !rescheduled then begin
          rescheduled := true;
          ignore (Timing_wheel.schedule w ~at:(us 25.0) "b" : Timing_wheel.handle)
        end)
  in
  Alcotest.(check int) "one fired this round" 1 (Fire_outcome.fired n);
  Alcotest.(check int) "b pending" 1 (Timing_wheel.pending w);
  let n2, fired = collect_fired w ~now:(us 30.0) in
  Alcotest.(check int) "b fires next round" 1 n2;
  Alcotest.(check (list string)) "b" [ "b" ] (List.map snd fired)

let test_iter_pending () =
  let w = Timing_wheel.create ~tick:(us 10.0) () in
  ignore (Timing_wheel.schedule w ~at:(us 10.0) 1 : Timing_wheel.handle);
  let h = Timing_wheel.schedule w ~at:(us 20.0) 2 in
  ignore (Timing_wheel.schedule w ~at:(us 30.0) 3 : Timing_wheel.handle);
  Timing_wheel.cancel w h;
  let seen = ref [] in
  Timing_wheel.iter_pending w (fun _ v -> seen := v :: !seen);
  Alcotest.(check (list int)) "pending values" [ 1; 3 ] (List.sort compare !seen)

let test_invalid_args () =
  Alcotest.check_raises "tick<=0" (Invalid_argument "Timing_wheel.create: tick must be positive")
    (fun () -> ignore (Timing_wheel.create ~tick:0L () : unit Timing_wheel.t));
  Alcotest.check_raises "slots<=0" (Invalid_argument "Timing_wheel.create: slots must be positive")
    (fun () -> ignore (Timing_wheel.create ~slots:0 ~tick:1L () : unit Timing_wheel.t))

(* Regression (cancel-leak): cancelled entries are reclaimed lazily when
   their slot is swept, so a schedule/cancel churn loop far ahead of the
   sweep horizon — a rate clock retiming its one outstanding event, say
   — used to grow bucket lists without bound.  With compaction the
   resident count (pending + not-yet-reclaimed cancelled) stays bounded
   by the compaction threshold no matter how many entries churn. *)
let test_cancel_churn_bounded () =
  let slots = 64 in
  let w = Timing_wheel.create ~slots ~tick:(us 10.0) () in
  (* A long-lived entry keeps the wheel non-empty throughout. *)
  ignore (Timing_wheel.schedule w ~at:(us 1e9) "keeper" : Timing_wheel.handle);
  let worst = ref 0 in
  for i = 1 to 50_000 do
    let h = Timing_wheel.schedule w ~at:(us (100_000.0 +. float_of_int i)) "churn" in
    Timing_wheel.cancel w h;
    if Timing_wheel.resident w > !worst then worst := Timing_wheel.resident w
  done;
  Alcotest.(check bool)
    (Printf.sprintf "resident bounded (worst %d)" !worst)
    true
    (!worst <= (2 * slots) + 2);
  Alcotest.(check int) "only the keeper is pending" 1 (Timing_wheel.pending w);
  Alcotest.(check (option int64)) "min survives compaction" (Some (us 1e9))
    (Timing_wheel.next_deadline w);
  let _, fired = collect_fired w ~now:(us 2e9) in
  Alcotest.(check (list string)) "keeper fires" [ "keeper" ] (List.map snd fired)

(* Property: against a sorted-list oracle, under a random schedule of
   operations (schedule / cancel / advance), fire_due produces exactly
   the same (deadline, id) multiset in the same deadline order, and
   next_deadline always agrees. *)

type op = Schedule of int | Cancel of int | Advance of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun d -> Schedule d) (int_range 0 2_000));
        (2, map (fun i -> Cancel i) (int_range 0 50));
        (3, map (fun d -> Advance d) (int_range 1 500));
      ])

let ops_arbitrary =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Schedule d -> Printf.sprintf "S%d" d
             | Cancel i -> Printf.sprintf "C%d" i
             | Advance d -> Printf.sprintf "A%d" d)
           ops))
    QCheck.Gen.(list_size (int_range 1 120) op_gen)

let test_oracle_equivalence =
  QCheck.Test.make ~name:"wheel = sorted-list oracle" ~count:300 ops_arbitrary (fun ops ->
      let w = Timing_wheel.create ~slots:16 ~tick:(us 10.0) () in
      (* Oracle: (deadline, id, cancelled ref) list. *)
      let oracle : (Time_ns.t * int * bool ref) list ref = ref [] in
      let handles : (int * Timing_wheel.handle * bool ref) list ref = ref [] in
      let now = ref Time_ns.zero in
      let next_id = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Schedule offset_us ->
            let at = Time_ns.(!now + us (float_of_int offset_us)) in
            let id = !next_id in
            incr next_id;
            let h = Timing_wheel.schedule w ~at id in
            let alive = ref true in
            oracle := (at, id, alive) :: !oracle;
            handles := (id, h, alive) :: !handles
          | Cancel idx -> begin
            match List.nth_opt !handles (idx mod max 1 (List.length !handles)) with
            | Some (_, h, alive) when !handles <> [] ->
              Timing_wheel.cancel w h;
              alive := false
            | _ -> ()
          end
          | Advance d ->
            now := Time_ns.(!now + us (float_of_int d));
            let fired = ref [] in
            ignore
              (Timing_wheel.fire_due w ~now:!now ~limit:max_int (fun due v -> fired := (due, v) :: !fired)
                : Fire_outcome.t);
            let fired = List.rev !fired in
            let expected =
              !oracle
              |> List.filter (fun (at, _, alive) -> !alive && Time_ns.(at <= !now))
              |> List.map (fun (at, id, _) -> (at, id))
              |> List.sort (fun (a, i) (b, j) ->
                     let c = Time_ns.compare a b in
                     if c <> 0 then c else compare i j)
            in
            oracle :=
              List.filter (fun (at, _, alive) -> (not !alive) || Time_ns.(at > !now)) !oracle;
            (* Fired entries are spent: drop them from the oracle; also
               mark them dead so later cancels are no-ops. *)
            List.iter
              (fun (_, id) ->
                match List.find_opt (fun (i, _, _) -> i = id) !handles with
                | Some (_, _, alive) -> alive := false
                | None -> ())
              expected;
            if fired <> expected then ok := false)
        ops;
      (* Final consistency of pending count and next_deadline. *)
      let live = List.filter (fun (_, _, alive) -> !alive) !oracle in
      let expected_min =
        List.fold_left
          (fun acc (at, _, _) ->
            match acc with None -> Some at | Some m -> Some (Time_ns.min m at))
          None live
      in
      !ok
      && Timing_wheel.pending w = List.length live
      && Timing_wheel.next_deadline w = expected_min)


(* Property: [next_deadline] equals the true minimum pending deadline
   after EVERY operation (the oracle test above only checks it at the
   end), including the lazy min-cache invalidation paths exercised by
   cancel-of-minimum and by firing. *)
let test_next_deadline_always_min =
  QCheck.Test.make ~name:"next_deadline = true min after every op" ~count:300 ops_arbitrary
    (fun ops ->
      let w = Timing_wheel.create ~slots:16 ~tick:(us 10.0) () in
      let entries : (Time_ns.t * Timing_wheel.handle * bool ref) list ref = ref [] in
      let now = ref Time_ns.zero in
      let ok = ref true in
      let check_min () =
        let expected =
          List.fold_left
            (fun acc (at, _, alive) ->
              if not !alive then acc
              else match acc with None -> Some at | Some m -> Some (Time_ns.min m at))
            None !entries
        in
        if Timing_wheel.next_deadline w <> expected then ok := false
      in
      List.iter
        (fun op ->
          (match op with
          | Schedule offset_us ->
            let at = Time_ns.(!now + us (float_of_int offset_us)) in
            let h = Timing_wheel.schedule w ~at 0 in
            entries := (at, h, ref true) :: !entries
          | Cancel idx -> begin
            match List.nth_opt !entries (idx mod max 1 (List.length !entries)) with
            | Some (_, h, alive) when !entries <> [] ->
              Timing_wheel.cancel w h;
              alive := false
            | _ -> ()
          end
          | Advance d ->
            now := Time_ns.(!now + us (float_of_int d));
            ignore (Timing_wheel.fire_due w ~now:!now ~limit:max_int (fun _ _ -> ()) : Fire_outcome.t);
            List.iter
              (fun (at, _, alive) -> if !alive && Time_ns.(at <= !now) then alive := false)
              !entries);
          check_min ())
        ops;
      !ok)

(* ------------------------------------------------------------------ *)
(* Timer_backend: the same oracle, over all four backends. *)

let backend_oracle (module B : Timer_backend.S) ops =
  let w = B.create ~tick:(us 10.0) () in
  let oracle : (Time_ns.t * int * bool ref) list ref = ref [] in
  let handles : (int * B.handle * bool ref) list ref = ref [] in
  let now = ref Time_ns.zero in
  let next_id = ref 0 in
  let ok = ref true in
  List.iter
    (fun op ->
      match op with
      | Schedule offset_us ->
        let at = Time_ns.(!now + us (float_of_int offset_us)) in
        let id = !next_id in
        incr next_id;
        let h = B.schedule w ~at id in
        let alive = ref true in
        oracle := (at, id, alive) :: !oracle;
        handles := (id, h, alive) :: !handles
      | Cancel idx -> begin
        match List.nth_opt !handles (idx mod max 1 (List.length !handles)) with
        | Some (_, h, alive) when !handles <> [] ->
          B.cancel w h;
          alive := false
        | _ -> ()
      end
      | Advance d ->
        now := Time_ns.(!now + us (float_of_int d));
        let fired = ref [] in
        ignore (B.fire_due w ~now:!now ~limit:max_int (fun due v -> fired := (due, v) :: !fired) : Fire_outcome.t);
        let fired = List.rev !fired in
        let expected =
          !oracle
          |> List.filter (fun (at, _, alive) -> !alive && Time_ns.(at <= !now))
          |> List.map (fun (at, id, _) -> (at, id))
          |> List.sort (fun (a, i) (b, j) ->
                 let c = Time_ns.compare a b in
                 if c <> 0 then c else compare i j)
        in
        oracle :=
          List.filter (fun (at, _, alive) -> (not !alive) || Time_ns.(at > !now)) !oracle;
        List.iter
          (fun (_, id) ->
            match List.find_opt (fun (i, _, _) -> i = id) !handles with
            | Some (_, _, alive) -> alive := false
            | None -> ())
          expected;
        if fired <> expected then ok := false)
    ops;
  let live = List.filter (fun (_, _, alive) -> !alive) !oracle in
  let expected_min =
    List.fold_left
      (fun acc (at, _, _) -> match acc with None -> Some at | Some m -> Some (Time_ns.min m at))
      None live
  in
  !ok && B.pending w = List.length live && B.next_deadline w = expected_min

(* The hierarchical wheel's overflow list holds entries beyond 64^4
   ticks; with a 100 ns tick that is ~1.7 s out. *)
let test_hier_overflow_path () =
  let module H = Timer_backend.Hier in
  let w = H.create ~tick:100L () in
  ignore (H.schedule w ~at:(Time_ns.of_sec 2.0) "overflow" : H.handle);
  ignore (H.schedule w ~at:(us 50.0) "near" : H.handle);
  Alcotest.(check (option int64)) "min is near" (Some (us 50.0)) (H.next_deadline w);
  let fired = ref [] in
  ignore (H.fire_due w ~now:(Time_ns.of_sec 0.5) ~limit:max_int (fun _ v -> fired := v :: !fired) : Fire_outcome.t);
  Alcotest.(check (list string)) "near fires, overflow waits" [ "near" ] (List.rev !fired);
  Alcotest.(check (option int64)) "overflow is the min now" (Some (Time_ns.of_sec 2.0))
    (H.next_deadline w);
  ignore (H.fire_due w ~now:(Time_ns.of_sec 3.0) ~limit:max_int (fun _ v -> fired := v :: !fired) : Fire_outcome.t);
  Alcotest.(check (list string)) "overflow fires after cascades" [ "near"; "overflow" ]
    (List.rev !fired);
  Alcotest.(check int) "drained" 0 (H.pending w)

(* Exercise fast_forward with long quiet gaps between sparse timers. *)
let test_hier_long_gaps =
  QCheck.Test.make ~name:"hier survives long idle gaps" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 20) (pair (int_range 0 5_000_000) (int_range 1 5_000_000)))
    (fun ops ->
      let module H = Timer_backend.Hier in
      let w = H.create ~tick:(us 10.0) () in
      let now = ref Time_ns.zero in
      let scheduled = ref [] in
      let fired = ref [] in
      List.iter
        (fun (offset_us, advance_us) ->
          let at = Time_ns.(!now + us (float_of_int offset_us)) in
          let id = List.length !scheduled in
          ignore (H.schedule w ~at id : H.handle);
          scheduled := (at, id) :: !scheduled;
          now := Time_ns.(!now + us (float_of_int advance_us));
          ignore (H.fire_due w ~now:!now ~limit:max_int (fun _ v -> fired := v :: !fired) : Fire_outcome.t))
        ops;
      (* Drain everything far in the future; every entry must fire
         exactly once. *)
      now := Time_ns.(!now + Time_ns.of_sec 100_000.0);
      ignore (H.fire_due w ~now:!now ~limit:max_int (fun _ v -> fired := v :: !fired) : Fire_outcome.t);
      List.sort compare !fired = List.init (List.length !scheduled) Fun.id
      && H.pending w = 0)

let backend_tests =
  List.map
    (fun (module B : Timer_backend.S) ->
      QCheck.Test.make
        ~name:(Printf.sprintf "%s = sorted-list oracle" B.name)
        ~count:150 ops_arbitrary
        (fun ops -> backend_oracle (module B) ops))
    Timer_backend.all

let test_backends_basic () =
  List.iter
    (fun (module B : Timer_backend.S) ->
      let w = B.create ~tick:(us 10.0) () in
      ignore (B.schedule w ~at:(us 25.0) "a" : B.handle);
      let h = B.schedule w ~at:(us 55.0) "b" in
      ignore (B.schedule w ~at:(us 7_777.0) "far" : B.handle);
      Alcotest.(check int) (B.name ^ " pending") 3 (B.pending w);
      Alcotest.(check (option int64)) (B.name ^ " earliest") (Some (us 25.0)) (B.next_deadline w);
      B.cancel w h;
      let fired = ref [] in
      ignore (B.fire_due w ~now:(us 100.0) ~limit:max_int (fun _ v -> fired := v :: !fired) : Fire_outcome.t);
      Alcotest.(check (list string)) (B.name ^ " fires only a") [ "a" ] (List.rev !fired);
      ignore (B.fire_due w ~now:(us 10_000.0) ~limit:max_int (fun _ v -> fired := v :: !fired) : Fire_outcome.t);
      Alcotest.(check (list string)) (B.name ^ " far fires later") [ "a"; "far" ] (List.rev !fired);
      Alcotest.(check int) (B.name ^ " drained") 0 (B.pending w))
    Timer_backend.all

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "timing_wheel"
    [
      ( "unit",
        [
          Alcotest.test_case "basic scheduling and firing" `Quick test_basic_fire;
          Alcotest.test_case "fire order and ties" `Quick test_fire_order_and_ties;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "far-future rotations" `Quick test_far_future_rotations;
          Alcotest.test_case "overdue schedule fires" `Quick test_overdue_schedule_fires;
          Alcotest.test_case "schedule during fire" `Quick test_schedule_during_fire;
          Alcotest.test_case "iter_pending" `Quick test_iter_pending;
          Alcotest.test_case "invalid args" `Quick test_invalid_args;
          Alcotest.test_case "cancel churn stays bounded" `Quick test_cancel_churn_bounded;
        ] );
      ("property", [ qc test_oracle_equivalence; qc test_next_deadline_always_min ]);
      ( "backends",
        Alcotest.test_case "basic semantics (all backends)" `Quick test_backends_basic
        :: Alcotest.test_case "hier overflow path" `Quick test_hier_overflow_path
        :: qc test_hier_long_gaps
        :: List.map qc backend_tests );
    ]
