(* Module-level reachability graph over toplevel value bindings.

   Nodes are (Module, value) pairs — the innermost enclosing module
   name, which for these unwrapped libraries is how call sites actually
   spell references ([Eventq.push], [Hdr.record]).  Edges are syntactic
   mentions: an identifier inside a binding's body that resolves (after
   toplevel-alias expansion) to another known binding.

   The graph deliberately over-approximates: a local [let] shadowing a
   toplevel name still produces the edge, and calls through closures or
   functor parameters produce none.  Over-approximation only widens the
   checked set (safe for ALLOC/RACE, which scan reachable bodies);
   under-approximation through higher-order calls is the documented
   limit of a syntactic tool.

   Two derived indexes ride along:
   - hot roots: bindings annotated [@hot] — the ALLOC entry points;
   - mutable toplevel state: zero-arity bindings whose initializer
     (after inlining one step through same-module helper calls)
     syntactically creates mutable storage, minus those wrapped in the
     recognised protections (Atomic.make / Domain.DLS.new_key /
     Mutex.create). *)

open Parsetree

type def = {
  d_file : Lint_source.file;
  d_module : string;
  d_name : string;
  d_loc : Location.t;
  d_expr : expression;
  d_arity : int;  (* leading fun parameters of the binding *)
  d_hot : bool;
}

type state = {
  s_module : string;
  s_name : string;
  s_file : Lint_source.file;
  s_loc : Location.t;
  s_protected : bool;
}

type t = {
  defs : (string * string, def) Hashtbl.t;
  states : (string * string, state) Hashtbl.t;
  files : Lint_source.file list;
}

let rec arity_of (e : expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> 1 + arity_of body
  | Pexp_newtype (_, body) -> arity_of body
  | Pexp_constraint (body, _) -> arity_of body
  | _ -> 0

let binding_name (vb : value_binding) =
  let rec pat_name (p : pattern) =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p, _) -> pat_name p
    | _ -> None
  in
  pat_name vb.pvb_pat

(* ---------- mutable-state recognition ---------- *)

let protected_heads =
  [ [ "Atomic"; "make" ]; [ "Domain"; "DLS"; "new_key" ]; [ "Mutex"; "create" ] ]

let mutable_creators =
  [
    [ "ref" ];
    [ "Hashtbl"; "create" ];
    [ "Buffer"; "create" ];
    [ "Array"; "make" ];
    [ "Array"; "init" ];
    [ "Array"; "create_float" ];
    [ "Array"; "make_matrix" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
    [ "Queue"; "create" ];
    [ "Stack"; "create" ];
  ]

let head_ident (e : expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> Some txt
  | _ -> None

let resolves_to (f : Lint_source.file) lid targets =
  match Lint_source.resolve_lid f lid with
  | Some parts -> List.mem parts targets
  | None -> false

(* Does [e] syntactically create mutable storage?  [mutable_labels] are
   the labels declared [mutable] in the file whose record types are in
   scope (the defining file's, or the helper's when inlining).
   Subtrees rooted at a protected constructor are skipped: the state
   inside [Atomic.make (ref 0)] is owned by the protection. *)
let protected_init (f : Lint_source.file) (e : expression) =
  match head_ident e with
  | Some lid -> resolves_to f lid protected_heads
  | None -> false

let creates_mutable (f : Lint_source.file) (e : expression) =
  match head_ident e with
  | Some lid when resolves_to f lid protected_heads -> false
  | _ ->
    let found = ref false in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self ex ->
            match head_ident ex with
            | Some lid when resolves_to f lid protected_heads -> ()  (* skip subtree *)
            | _ ->
              (match ex.pexp_desc with
              | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
                when resolves_to f txt mutable_creators ->
                found := true
              | Pexp_array _ -> found := true
              | Pexp_record (fields, _) ->
                if
                  List.exists
                    (fun ((lbl : Longident.t Location.loc), _) ->
                      match Longident.last lbl.Location.txt with
                      | l -> List.mem l f.Lint_source.mutable_labels
                      | exception _ -> false)
                    fields
                then found := true
              | _ -> ());
              Ast_iterator.default_iterator.expr self ex);
      }
    in
    it.expr it e;
    !found

(* ---------- graph construction ---------- *)

let build (files : Lint_source.file list) : t =
  let defs = Hashtbl.create 512 in
  let states = Hashtbl.create 64 in
  List.iter
    (fun (f : Lint_source.file) ->
      let rec walk_structure modname str =
        List.iter
          (fun item ->
            match item.pstr_desc with
            | Pstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  match binding_name vb with
                  | None -> ()
                  | Some name ->
                    let d =
                      {
                        d_file = f;
                        d_module = modname;
                        d_name = name;
                        d_loc = vb.pvb_loc;
                        d_expr = vb.pvb_expr;
                        d_arity = arity_of vb.pvb_expr;
                        d_hot = Lint_source.is_hot_attrs vb.pvb_attributes;
                      }
                    in
                    (* First binding wins on duplicate names (e.g. a
                       shadowing re-definition): close enough for an
                       over-approximating graph. *)
                    if not (Hashtbl.mem defs (modname, name)) then
                      Hashtbl.replace defs (modname, name) d)
                vbs
            | Pstr_module { pmb_name = { txt = Some sub; _ }; pmb_expr; _ } ->
              walk_module_expr sub pmb_expr
            | Pstr_recmodule mbs ->
              List.iter
                (fun mb ->
                  match mb.pmb_name.txt with
                  | Some sub -> walk_module_expr sub mb.pmb_expr
                  | None -> ())
                mbs
            | _ -> ())
          str
      and walk_module_expr sub (me : module_expr) =
        match me.pmod_desc with
        | Pmod_structure str -> walk_structure sub str
        | Pmod_functor (_, body) -> walk_module_expr sub body
        | Pmod_constraint (me, _) -> walk_module_expr sub me
        | _ -> ()
      in
      walk_structure f.modname f.str)
    files;
  (* Second pass: classify zero-arity bindings as mutable state.  The
     initializer is inspected directly, then — when its head resolves
     to another known def — one step through that helper's body, so
     [let default = create ()] with [create () = { tbl = Hashtbl.create 64 }]
     in the same module is recognised. *)
  Hashtbl.iter
    (fun key (d : def) ->
      if d.d_arity = 0 then begin
        let prot = protected_init d.d_file d.d_expr in
        let direct = creates_mutable d.d_file d.d_expr in
        let inlined =
          (not direct) && (not prot)
          &&
          match head_ident d.d_expr with
          | Some lid -> (
            match Lint_source.resolve_lid d.d_file lid with
            | Some [ name ] -> (
              match Hashtbl.find_opt defs (d.d_module, name) with
              | Some helper -> creates_mutable helper.d_file helper.d_expr
              | None -> false)
            | Some [ m; name ] -> (
              match Hashtbl.find_opt defs (m, name) with
              | Some helper -> creates_mutable helper.d_file helper.d_expr
              | None -> false)
            | _ -> false)
          | None -> false
        in
        (* Protected initializers are never recorded: Atomic / DLS /
           Mutex wrapping is exactly the discipline the rules demand. *)
        if (not prot) && (direct || inlined) then
          Hashtbl.replace states key
            {
              s_module = d.d_module;
              s_name = d.d_name;
              s_file = d.d_file;
              s_loc = d.d_loc;
              s_protected = false;
            }
      end)
    defs;
  { defs; states; files }

(* ---------- reference extraction ---------- *)

(* Resolved references from an expression to known defs.  Unqualified
   names resolve within [current_module] (and, for nested modules, the
   enclosing file's toplevel module); [M.x] resolves through the
   innermost module segment. *)
let refs_of_expr (t : t) (f : Lint_source.file) ~current_module (e : expression) :
    (string * string) list =
  let acc = ref [] in
  let note key = if Hashtbl.mem t.defs key then acc := key :: !acc in
  let check lid =
    match Lint_source.resolve_lid f lid with
    | Some [ x ] ->
      note (current_module, x);
      if current_module <> f.Lint_source.modname then note (f.Lint_source.modname, x)
    | Some parts when List.length parts >= 2 ->
      let n = List.length parts in
      let m = List.nth parts (n - 2) in
      let x = List.nth parts (n - 1) in
      note (m, x)
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with Pexp_ident { txt; _ } -> check txt | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  List.sort_uniq compare !acc

(* BFS closure from [roots]; the result maps every reached node to its
   BFS parent (roots map to themselves), so callers can reconstruct a
   witness path for diagnostics.

   [expand_init] controls whether the search continues THROUGH
   zero-arity bindings.  Their initializers run once at module load,
   so for the ALLOC rules a mention inside one is not a call made by
   the hot path ([Timing_wheel.e_compact = Profile.intern [...]] must
   not drag the whole interner into the hot set); the RACE rules keep
   the default over-approximation. *)
let reach_from ?(expand_init = true) (t : t) (roots : (string * string) list) :
    (string * string, string * string) Hashtbl.t =
  let parent = Hashtbl.create 256 in
  let queue = Queue.create () in
  List.iter
    (fun r ->
      if Hashtbl.mem t.defs r && not (Hashtbl.mem parent r) then begin
        Hashtbl.replace parent r r;
        Queue.add r queue
      end)
    roots;
  while not (Queue.is_empty queue) do
    let node = Queue.pop queue in
    match Hashtbl.find_opt t.defs node with
    | None -> ()
    | Some d when (not expand_init) && d.d_arity = 0 -> ()
    | Some d ->
      List.iter
        (fun target ->
          if not (Hashtbl.mem parent target) then begin
            Hashtbl.replace parent target node;
            Queue.add target queue
          end)
        (refs_of_expr t d.d_file ~current_module:d.d_module d.d_expr)
  done;
  parent

let hot_roots (t : t) : def list =
  Hashtbl.fold (fun _ d acc -> if d.d_hot then d :: acc else acc) t.defs []
  |> List.sort (fun a b -> compare (a.d_module, a.d_name) (b.d_module, b.d_name))

let find_def (t : t) key = Hashtbl.find_opt t.defs key
let find_state (t : t) key = Hashtbl.find_opt t.states key

let witness_path parent ~node =
  let rec go acc node =
    match Hashtbl.find_opt parent node with
    | Some p when p <> node && List.length acc < 6 -> go (node :: acc) p
    | _ -> node :: acc
  in
  go [] node
