(* Diagnostics infrastructure shared by every lint rule module:
   violation collection, the three output formats (text, JSON, SARIF
   2.1.0) and the ratchet baseline.

   The ratchet freezes pre-existing findings: BASELINE.json records a
   count per (file, rule) pair, and a run fails only when some pair's
   live count exceeds its frozen count — so legacy debt does not block
   CI while any *new* finding does.  Counts (rather than exact lines)
   make the baseline robust against unrelated edits shifting line
   numbers. *)

type violation = { file : string; line : int; rule : string; msg : string }

(* Catalogue of every rule the suite can emit, used for SARIF rule
   metadata and --help.  Kept here so adding a rule in one of the
   rules_* modules forces the catalogue update (SARIF consumers index
   results by ruleId). *)
let catalogue =
  [
    ("DET001", "wall-clock read in simulated code");
    ("DET002", "global Random.* instead of an explicit Prng stream");
    ("DET003", "polymorphic comparison on a time-valued operand");
    ("DET004", "Obj.magic / order-leaking Hashtbl iteration");
    ("MLI001", "lib/ module without an .mli");
    ("MEM001", "Gc.Memprof use outside lib/obs/memprof");
    ("RACE001", "parallel closure captures unprotected mutable toplevel state");
    ("RACE002", "parallel closure reaches unprotected mutable toplevel state");
    ("RACE003", "Domain.spawn outside lib/parallel");
    ("RACE004", "Atomic read-modify-write split into get and set");
    ("ALLOC001", "closure or partial application on a [@hot] path");
    ("ALLOC002", "tuple/record/list/array construction on a [@hot] path");
    ("ALLOC003", "boxing or formatting call on a [@hot] path");
    ("PARSE", "file does not parse");
  ]

let violations : violation list ref = ref []
let report ~file ~line ~rule msg = violations := { file; line; rule; msg } :: !violations

let sorted () =
  List.sort
    (fun a b ->
      let c = String.compare a.file b.file in
      if c <> 0 then c
      else
        let c = Int.compare a.line b.line in
        if c <> 0 then c
        else
          let c = String.compare a.rule b.rule in
          if c <> 0 then c else String.compare a.msg b.msg)
    !violations

(* ---------- JSON writing (no external dependency) ---------- *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_str b s =
  Buffer.add_char b '"';
  json_escape b s;
  Buffer.add_char b '"'

let to_json ~frozen vs =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"softtimers-lint/1\",\n  \"violations\": [";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    { \"file\": ";
      add_str b v.file;
      Buffer.add_string b (Printf.sprintf ", \"line\": %d, \"rule\": " v.line);
      add_str b v.rule;
      Buffer.add_string b ", \"message\": ";
      add_str b v.msg;
      Buffer.add_string b
        (Printf.sprintf ", \"baseline\": %b }" (frozen v));
      ())
    vs;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* SARIF 2.1.0, the minimal shape GitHub code scanning and IDE SARIF
   viewers accept: one run, one driver, rules catalogue, results with
   physical locations.  Baseline'd findings carry a suppression entry
   so viewers show them greyed out rather than as regressions. *)
let to_sarif ~frozen vs =
  let b = Buffer.create 8192 in
  Buffer.add_string b
    "{\n\
    \  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n\
    \  \"version\": \"2.1.0\",\n\
    \  \"runs\": [ {\n\
    \    \"tool\": { \"driver\": {\n\
    \      \"name\": \"softtimers-lint\",\n\
    \      \"informationUri\": \"https://example.invalid/softtimers\",\n\
    \      \"rules\": [";
  List.iteri
    (fun i (id, desc) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n        { \"id\": ";
      add_str b id;
      Buffer.add_string b ", \"shortDescription\": { \"text\": ";
      add_str b desc;
      Buffer.add_string b " } }")
    catalogue;
  Buffer.add_string b "\n      ]\n    } },\n    \"results\": [";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n      { \"ruleId\": ";
      add_str b v.rule;
      Buffer.add_string b ", \"level\": \"error\", \"message\": { \"text\": ";
      add_str b v.msg;
      Buffer.add_string b " },\n        \"locations\": [ { \"physicalLocation\": {";
      Buffer.add_string b " \"artifactLocation\": { \"uri\": ";
      add_str b v.file;
      Buffer.add_string b
        (Printf.sprintf " }, \"region\": { \"startLine\": %d } } } ]"
           (if v.line > 0 then v.line else 1));
      if frozen v then
        Buffer.add_string b
          ",\n        \"suppressions\": [ { \"kind\": \"external\", \"justification\": \
           \"frozen in tools/lint/BASELINE.json (ratchet)\" } ]";
      Buffer.add_string b " }")
    vs;
  Buffer.add_string b "\n    ]\n  } ]\n}\n";
  Buffer.contents b

(* ---------- minimal JSON reader for the baseline ---------- *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jlist of json list
  | Jobj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected '%c'" c) in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char b '"'; advance ()
        | '\\' -> Buffer.add_char b '\\'; advance ()
        | '/' -> Buffer.add_char b '/'; advance ()
        | 'n' -> Buffer.add_char b '\n'; advance ()
        | 't' -> Buffer.add_char b '\t'; advance ()
        | 'r' -> Buffer.add_char b '\r'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then fail "bad unicode escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          if code < 128 then Buffer.add_char b (Char.chr code)
          else Buffer.add_char b '?'
        | c -> fail (Printf.sprintf "bad escape '%c'" c));
        loop ()
      | c -> Buffer.add_char b c; advance (); loop ()
    in
    loop ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> Jstr (parse_string ())
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin advance (); Jobj [] end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ()
          | '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Jobj (List.rev !fields)
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin advance (); Jlist [] end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | ',' -> advance (); elements ()
          | ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        Jlist (List.rev !items)
      end
    | 't' -> pos := !pos + 4; Jbool true
    | 'f' -> pos := !pos + 5; Jbool false
    | 'n' -> pos := !pos + 4; Jnull
    | c when c = '-' || (c >= '0' && c <= '9') ->
      let start = !pos in
      let num_char c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && num_char s.[!pos] do advance () done;
      (try Jnum (float_of_string (String.sub s start (!pos - start)))
       with _ -> fail "bad number")
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---------- ratchet baseline ---------- *)

(* (file, rule) -> frozen count *)
type baseline = (string * string, int) Hashtbl.t

let counts_of vs : ((string * string) * int) list =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun v ->
      let k = (v.file, v.rule) in
      Hashtbl.replace tbl k (1 + try Hashtbl.find tbl k with Not_found -> 0))
    vs;
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl []
  |> List.sort (fun ((f1, r1), _) ((f2, r2), _) ->
         let c = String.compare f1 f2 in
         if c <> 0 then c else String.compare r1 r2)

let write_baseline path vs =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n  \"schema\": \"softtimers-lint-baseline/1\",\n  \"entries\": [";
  List.iteri
    (fun i ((file, rule), count) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    { \"file\": ";
      add_str b file;
      Buffer.add_string b ", \"rule\": ";
      add_str b rule;
      Buffer.add_string b (Printf.sprintf ", \"count\": %d }" count))
    (counts_of vs);
  Buffer.add_string b "\n  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

let load_baseline path : baseline =
  let ic = open_in_bin path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let tbl = Hashtbl.create 64 in
  (match parse_json src with
  | Jobj fields -> (
    match List.assoc_opt "entries" fields with
    | Some (Jlist entries) ->
      List.iter
        (function
          | Jobj e -> (
            match
              (List.assoc_opt "file" e, List.assoc_opt "rule" e, List.assoc_opt "count" e)
            with
            | Some (Jstr f), Some (Jstr r), Some (Jnum c) ->
              Hashtbl.replace tbl (f, r) (int_of_float c)
            | _ -> raise (Bad_json "baseline entry missing file/rule/count"))
          | _ -> raise (Bad_json "baseline entry is not an object"))
        entries
    | _ -> raise (Bad_json "baseline has no \"entries\" list"))
  | _ -> raise (Bad_json "baseline is not an object"));
  tbl

(* Partition the live findings against the frozen counts: every
   violation of a (file, rule) pair whose live count exceeds its frozen
   count is "new" (line numbers inside a frozen pair are not tracked,
   so the whole pair surfaces for inspection when it grows). *)
let against_baseline (bl : baseline) vs =
  let live = counts_of vs in
  let grown =
    List.filter_map
      (fun ((file, rule), c) ->
        let frozen = try Hashtbl.find bl (file, rule) with Not_found -> 0 in
        if c > frozen then Some (file, rule) else None)
      live
  in
  let is_new v = List.mem (v.file, v.rule) grown in
  let fresh = List.filter is_new vs in
  let frozen = List.filter (fun v -> not (is_new v)) vs in
  (fresh, frozen)
