(* Determinism rules DET001..DET004 + MLI001, ported from the original
   single-file lint onto the shared framework.

   Changes against the original:
   - module aliasing no longer evades DET001/DET002/DET004: every
     identifier path is expanded through the file's toplevel
     [module X = Path] aliases before the predicates run;
   - the DET001 bench allowlist is gone — benchmarks whose measurand is
     the wall clock carry [@@@lint.allow "DET001"] next to a
     justification comment instead of a path list in lint source;
   - DET004's Hashtbl-iteration scope includes [lib/store/]: store
     backends feed the deterministic "stores" counts section of the
     gating bench JSON, so unspecified bucket order there is
     result-affecting;
   - suppression is unified: file-level [@@@lint.allow] and per-line
     [@lint.allow] both apply. *)

open Parsetree

(* Directories whose modules produce results (tables, exported traces,
   metric dumps, bench JSON sections): Hashtbl iteration order must not
   reach their output.  Overridable from the CLI for fixture tests. *)
let default_det004_scope = [ "lib/experiments/"; "lib/obs/"; "lib/simcore/"; "lib/store/" ]

let wallclock_idents =
  [ [ "Unix"; "gettimeofday" ];
    [ "Unix"; "time" ];
    [ "Unix"; "gmtime" ];
    [ "Unix"; "localtime" ];
    [ "Unix"; "mktime" ];
    [ "Sys"; "time" ] ]

let line_of = Lint_source.line_of
let flatten_opt = Lint_source.flatten_opt

(* All path predicates below receive the alias-resolved parts. *)
let is_wallclock parts = List.mem parts wallclock_idents
let is_global_random parts = match parts with "Random" :: _ -> true | _ -> false
let is_obj_magic parts = parts = [ "Obj"; "magic" ]

let hashtbl_iteration parts =
  match parts with [ "Hashtbl"; (("iter" | "fold") as f) ] -> Some f | _ -> None

(* Polymorphic comparison operators as they appear unqualified (or
   qualified by Stdlib).  [Time_ns.compare] etc. resolve to a longer
   path and do not match. *)
let poly_compare_op lid =
  match lid with
  | Longident.Lident
      (("=" | "<>" | "==" | "!=" | "<" | "<=" | ">" | ">=" | "compare" | "min" | "max") as s)
    -> Some s
  | Longident.Ldot
      ( Longident.Lident "Stdlib",
        (("=" | "<>" | "<" | "<=" | ">" | ">=" | "compare" | "min" | "max") as s) ) ->
    Some s
  | _ -> None

let time_like_name name =
  match name with
  | "now" | "due" | "deadline" -> true
  | _ ->
    List.exists
      (fun suf -> Filename.check_suffix name suf)
      [ "_time"; "_deadline"; "_due"; "_ns" ]

(* Time_ns functions whose result is an ordinary int/float/string, not
   a time: an expression rooted in one of these is not time-valued even
   though the subtree mentions Time_ns (e.g. [Time_ns.compare a b > 0]
   is an int comparison). *)
let time_ns_escapes = [ "compare"; "to_ns"; "to_us"; "to_ms"; "to_sec"; "to_string"; "pp" ]

let escapes_time (ex : expression) =
  match ex.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Ldot (lid, fn); _ }; _ }, _) ->
    (match flatten_opt (Longident.Ldot (lid, fn)) with
    | Some parts -> List.mem "Time_ns" parts && List.mem fn time_ns_escapes
    | None -> false)
  | _ -> false

(* Does the expression (syntactically) mention a time value?  True when
   any identifier or record field within is time-like by name, or any
   path goes through the Time_ns module (excluding subtrees whose value
   already escaped to int/float, see [escapes_time]). *)
let expr_time_like e =
  let found = ref false in
  let last_part lid =
    match flatten_opt lid with
    | Some parts when parts <> [] -> Some (List.nth parts (List.length parts - 1))
    | _ -> None
  in
  let check_lid lid =
    (match flatten_opt lid with
    | Some parts when List.mem "Time_ns" parts ->
      (match last_part lid with
      | Some name when List.mem name time_ns_escapes -> ()
      | _ -> found := true)
    | _ -> ());
    match last_part lid with
    | Some name when time_like_name name -> found := true
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          if not (escapes_time ex) then begin
            (match ex.pexp_desc with
            | Pexp_ident { txt; _ } -> check_lid txt
            | Pexp_field (_, { txt; _ }) -> check_lid txt
            | _ -> ());
            Ast_iterator.default_iterator.expr self ex
          end);
    }
  in
  it.expr it e;
  !found

let opened_is_time_ns (od : open_declaration) =
  match od.popen_expr.pmod_desc with
  | Pmod_ident { txt = Longident.Lident "Time_ns"; _ } -> true
  | _ -> false

(* ---------- per-file scan ---------- *)

let scan ~det004_scope (f : Lint_source.file) =
  let file = f.Lint_source.path in
  let in_det004_scope =
    List.exists
      (fun prefix ->
        String.length file >= String.length prefix
        && String.sub file 0 (String.length prefix) = prefix)
      det004_scope
  in
  let emit ~loc ~rule msg =
    let line = line_of loc in
    if not (Lint_source.allowed f ~rule ~line) then
      Lint_diag.report ~file ~line ~rule msg
  in
  let resolved lid = Lint_source.resolve_lid f lid in
  (* Depth of enclosing [Time_ns.(...)] / [let open Time_ns in] scopes,
     inside which comparison operators resolve to Time_ns's own. *)
  let time_ns_open_depth = ref 0 in
  let expr_iter self (ex : expression) =
    match ex.pexp_desc with
    | Pexp_open (od, body) when opened_is_time_ns od ->
      incr time_ns_open_depth;
      self.Ast_iterator.expr self body;
      decr time_ns_open_depth
    | _ ->
      (match ex.pexp_desc with
      | Pexp_ident { txt; loc } ->
        (match resolved txt with
        | None -> ()
        | Some parts ->
          if is_wallclock parts then
            emit ~loc ~rule:"DET001"
              (Printf.sprintf
                 "wall-clock read %s breaks reproducibility; use virtual time (Engine.now) \
                  or justify with [@@@lint.allow \"DET001\"] when the wall clock is the \
                  measurand"
                 (String.concat "." parts));
          if is_global_random parts then
            emit ~loc ~rule:"DET002"
              "global Random.* is not replayable; draw from an explicit Simcore.Prng stream";
          if is_obj_magic parts then
            emit ~loc ~rule:"DET004" "Obj.magic defeats the type system";
          (match hashtbl_iteration parts with
          | Some fn when in_det004_scope ->
            emit ~loc ~rule:"DET004"
              (Printf.sprintf
                 "Hashtbl.%s iteration order is unspecified and leaks into results; sort \
                  the keys first (or justify with [@lint.allow \"DET004\"])"
                 fn)
          | _ -> ()))
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args)
        when !time_ns_open_depth = 0 -> (
        match poly_compare_op txt with
        | Some op when List.exists (fun (_, a) -> expr_time_like a) args ->
          emit ~loc ~rule:"DET003"
            (Printf.sprintf
               "polymorphic %s on a time-valued operand; use Time_ns comparisons \
                (Option.is_none/is_some for optional deadlines)"
               (if String.length op > 0 && not (op.[0] >= 'a' && op.[0] <= 'z') then
                  "(" ^ op ^ ")"
                else op))
        | _ -> ())
      | _ -> ());
      Ast_iterator.default_iterator.expr self ex
  in
  let it = { Ast_iterator.default_iterator with expr = expr_iter } in
  it.structure it f.Lint_source.str

(* MLI001: every module under lib/ declares an interface. *)
let check_mli (f : Lint_source.file) =
  let file = f.Lint_source.path in
  let has_prefix prefix s =
    String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix
  in
  if
    has_prefix "lib/" file
    && (not (Sys.file_exists (file ^ "i")))
    && not (Lint_source.allowed f ~rule:"MLI001" ~line:1)
  then
    Lint_diag.report ~file ~line:1 ~rule:"MLI001"
      "module has no interface; every lib/ module must ship an .mli"
