(* MEM001: Gc.Memprof confinement.

   The statistical allocation profiler is wrapped once, in
   lib/obs/memprof: that module owns the availability probe (on this
   compiler [Gc.Memprof.start] raises "not implemented in multicore"),
   the category attribution into the Profile registry, and the
   determinism contract (--mem output goes to stderr so digests and
   tables stay byte-identical).  A second call site would duplicate the
   probe and could start a second sampler behind the wrapper's back, so
   any alias-resolved identifier path through [Gc.Memprof] outside that
   one module is a finding.  Deliberate exceptions carry
   [@lint.allow "MEM001"] with a justification next to them. *)

open Parsetree

let owner_file = "lib/obs/memprof.ml"
let is_memprof parts = match parts with "Gc" :: "Memprof" :: _ -> true | _ -> false

let scan (f : Lint_source.file) =
  let file = f.Lint_source.path in
  if file <> owner_file then begin
    let emit ~loc parts =
      let line = Lint_source.line_of loc in
      if not (Lint_source.allowed f ~rule:"MEM001" ~line) then
        Lint_diag.report ~file ~line ~rule:"MEM001"
          (Printf.sprintf
             "%s outside lib/obs/memprof; route allocation profiling through the Memprof \
              wrapper so the availability probe and category attribution stay in one place"
             (String.concat "." parts))
    in
    let expr_iter self (ex : expression) =
      (match ex.pexp_desc with
      | Pexp_ident { txt; loc } -> (
        match Lint_source.resolve_lid f txt with
        | Some parts when is_memprof parts -> emit ~loc parts
        | _ -> ())
      | _ -> ());
      Ast_iterator.default_iterator.expr self ex
    in
    let it = { Ast_iterator.default_iterator with expr = expr_iter } in
    it.structure it f.Lint_source.str
  end
