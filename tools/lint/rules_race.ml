(* Domain-race rules for the coming SMP / domain-sharded work
   (ROADMAP item 2): once simulation state moves under OCaml 5 domains,
   a single unprotected [ref] or [Hashtbl] silently breaks the
   byte-identical [--jobs N] guarantee.  These rules make the hazard a
   compile-time failure instead of a replay-diff surprise.

   RACE001  a closure passed to [Parallel.Runner.map]/[map_sim]
            directly references mutable toplevel state (ref / Hashtbl /
            Buffer / array / record with mutable fields) that is not
            wrapped in Atomic, Domain.DLS or Mutex.
   RACE002  same, but the state is reached transitively: the closure
            calls a function whose body (through any call chain in the
            reachability graph) touches the state.
   RACE003  [Domain.spawn] outside lib/parallel — all domain fan-out
            goes through the one audited runner.
   RACE004  an [Atomic.set a (... Atomic.get a ...)] read-modify-write:
            the get/set pair is not atomic; use
            [Atomic.fetch_and_add] / [compare_and_set] / [exchange].

   RACE001/RACE002 findings are reported at the closure, but a
   [@lint.allow] on the *state definition* also suppresses them — the
   justification for why a given global is domain-safe belongs next to
   the global, not at every fan-out site. *)

open Parsetree

let line_of = Lint_source.line_of

let is_parallel_map parts =
  match List.rev parts with
  | ("map" | "map_sim") :: "Runner" :: _ -> true
  | _ -> false

let is_domain_spawn parts = parts = [ "Domain"; "spawn" ]

let has_prefix prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* States directly referenced by [e], resolved like reachability edges:
   unqualified names against the enclosing module(s), [M.x] through the
   innermost segment. *)
let state_refs (g : Reachability.t) (f : Lint_source.file) ~current_module e =
  let acc = ref [] in
  let note key =
    match Reachability.find_state g key with
    | Some s -> acc := (key, s) :: !acc
    | None -> ()
  in
  let check lid =
    match Lint_source.resolve_lid f lid with
    | Some [ x ] ->
      note (current_module, x);
      if current_module <> f.Lint_source.modname then note (f.Lint_source.modname, x)
    | Some parts when List.length parts >= 2 ->
      let n = List.length parts in
      note (List.nth parts (n - 2), List.nth parts (n - 1))
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with Pexp_ident { txt; _ } -> check txt | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  List.sort_uniq compare !acc

(* Suppression for RACE001/002 consults both ends: the closure site and
   the state definition. *)
let emit_race ~(call_file : Lint_source.file) ~line ~rule ~(state : Reachability.state) msg =
  let def_line = line_of state.s_loc in
  if
    (not (Lint_source.allowed call_file ~rule ~line))
    && not (Lint_source.allowed state.s_file ~rule ~line:def_line)
  then Lint_diag.report ~file:call_file.Lint_source.path ~line ~rule msg

let describe_state (state : Reachability.state) =
  Printf.sprintf "%s.%s (%s:%d)" state.s_module state.s_name state.s_file.Lint_source.path
    (line_of state.s_loc)

(* Check one job body (a closure literal, or the def a function
   argument resolves to) fanned out by Runner.map/map_sim. *)
let check_job (g : Reachability.t) ~(call_file : Lint_source.file) ~current_module ~line
    (body : expression) =
  (* RACE001: direct captures. *)
  let direct = state_refs g call_file ~current_module body in
  List.iter
    (fun (_, state) ->
      emit_race ~call_file ~line ~rule:"RACE001" ~state
        (Printf.sprintf
           "parallel job captures mutable toplevel %s with no Atomic/Domain.DLS/Mutex \
            protection; worker domains race on it"
           (describe_state state)))
    direct;
  (* RACE002: transitive reach.  Roots are the functions the closure
     mentions; every def reachable from them is scanned for state
     references. *)
  let roots = Reachability.refs_of_expr g call_file ~current_module body in
  let parent = Reachability.reach_from g roots in
  let seen = Hashtbl.create 8 in
  List.iter (fun (key, _) -> Hashtbl.replace seen key ()) direct;
  Hashtbl.iter
    (fun node _ ->
      match Reachability.find_def g node with
      | None -> ()
      | Some d ->
        List.iter
          (fun (key, state) ->
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              let path =
                Reachability.witness_path parent ~node
                |> List.map (fun (m, n) -> m ^ "." ^ n)
                |> String.concat " -> "
              in
              emit_race ~call_file ~line ~rule:"RACE002" ~state
                (Printf.sprintf
                   "parallel job reaches mutable toplevel %s via %s; wrap it in \
                    Atomic/Domain.DLS/Mutex or justify at the definition"
                   (describe_state state) path)
            end)
          (state_refs g d.d_file ~current_module:d.d_module d.d_expr))
    parent

(* Syntactic access path of an atomic's expression, for RACE004's
   same-atomic test: identifier paths and field chains only. *)
let rec access_path (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } ->
    (match Lint_source.flatten_opt txt with
    | Some parts -> Some (String.concat "." parts)
    | None -> None)
  | Pexp_field (base, { txt; _ }) ->
    (match (access_path base, Lint_source.flatten_opt txt) with
    | Some b, Some parts -> Some (b ^ "." ^ String.concat "." parts)
    | _ -> None)
  | _ -> None

let contains_get_of (f : Lint_source.file) (e : expression) ~target =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, arg) :: _)
            when (match Lint_source.resolve_lid f txt with
                 | Some [ "Atomic"; "get" ] -> true
                 | _ -> false) -> (
            match access_path arg with
            | Some p when p = target -> found := true
            | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  !found

(* ---------- per-file scan ---------- *)

let scan (g : Reachability.t) (f : Lint_source.file) =
  let file = f.Lint_source.path in
  let emit ~loc ~rule msg =
    let line = line_of loc in
    if not (Lint_source.allowed f ~rule ~line) then Lint_diag.report ~file ~line ~rule msg
  in
  (* Innermost module name tracks Pstr_module nesting so unqualified
     references inside submodules resolve against the right index. *)
  let current_module = ref f.Lint_source.modname in
  let expr_iter self (ex : expression) =
    (match ex.pexp_desc with
    | Pexp_ident { txt; loc } -> (
      match Lint_source.resolve_lid f txt with
      | Some parts when is_domain_spawn parts && not (has_prefix "lib/parallel" file) ->
        emit ~loc ~rule:"RACE003"
          "Domain.spawn outside lib/parallel; fan out through Parallel.Runner so \
           domain-local observability sinks and deterministic result order are preserved"
      | _ -> ())
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      (match Lint_source.resolve_lid f txt with
      | Some parts when is_parallel_map parts ->
        List.iter
          (fun ((label : Asttypes.arg_label), (arg : expression)) ->
            match (label, arg.pexp_desc) with
            | Asttypes.Nolabel, (Pexp_fun _ | Pexp_function _) ->
              check_job g ~call_file:f ~current_module:!current_module
                ~line:(line_of arg.pexp_loc) arg
            | Asttypes.Nolabel, Pexp_ident { txt = fn; _ } -> (
              (* [Runner.map job xs] with a named toplevel job. *)
              match Lint_source.resolve_lid f fn with
              | Some [ x ] -> (
                match Reachability.find_def g (!current_module, x) with
                | Some d ->
                  check_job g ~call_file:f ~current_module:d.d_module
                    ~line:(line_of arg.pexp_loc) d.d_expr
                | None -> ())
              | Some parts when List.length parts >= 2 -> (
                let n = List.length parts in
                match
                  Reachability.find_def g (List.nth parts (n - 2), List.nth parts (n - 1))
                with
                | Some d ->
                  check_job g ~call_file:f ~current_module:d.d_module
                    ~line:(line_of arg.pexp_loc) d.d_expr
                | None -> ())
              | _ -> ())
            | _ -> ())
          args
      | _ -> ());
      (* RACE004: Atomic.set whose value re-reads the same atomic. *)
      match Lint_source.resolve_lid f txt with
      | Some [ "Atomic"; "set" ] -> (
        match args with
        | (_, target_e) :: (_, value_e) :: _ -> (
          match access_path target_e with
          | Some target when contains_get_of f value_e ~target ->
            emit ~loc:ex.pexp_loc ~rule:"RACE004"
              (Printf.sprintf
                 "Atomic.get %s followed by Atomic.set is not atomic; use \
                  Atomic.fetch_and_add / compare_and_set / exchange"
                 target)
          | _ -> ())
        | _ -> ())
      | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr self ex
  in
  let rec walk_structure modname str =
    let saved = !current_module in
    current_module := modname;
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_module { pmb_name = { txt = Some sub; _ }; pmb_expr; _ } ->
          walk_module_expr sub pmb_expr
        | _ ->
          let it = { Ast_iterator.default_iterator with expr = expr_iter } in
          it.structure_item it item)
      str;
    current_module := saved
  and walk_module_expr sub (me : module_expr) =
    match me.pmod_desc with
    | Pmod_structure str -> walk_structure sub str
    | Pmod_functor (_, body) -> walk_module_expr sub body
    | Pmod_constraint (me, _) -> walk_module_expr sub me
    | _ -> ()
  in
  walk_structure f.Lint_source.modname f.Lint_source.str
