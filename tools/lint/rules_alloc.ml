(* Hot-path allocation rules.  PR 4 bought the engine hot path down to
   66.7 ns schedule+fire by keeping it GC-quiet; these rules keep an
   accidental closure or float box from creeping back in.

   A function opts in with [@hot] on its binding:

     let[@hot] rec sift_up t i ~time ~seq ~payload = ...

   and the check is transitive: every binding reachable from a [@hot]
   root through the reachability graph is scanned too, so a helper
   called from a hot function cannot hide an allocation.

   ALLOC001  closure construction — a nested [fun]/[function]/[lazy],
             or a partial application of a known function (fewer
             arguments than its definition's arity).
   ALLOC002  boxed data construction — tuples, records, list cells,
             array literals, constructors with a payload.
   ALLOC003  boxing and formatting calls — Printf/Format, string
             concatenation, boxed-integer arithmetic (Int64/Int32/
             Nativeint produce a fresh box per result), unqualified
             polymorphic [compare]/[min]/[max] (specialise: they box
             float arguments), and a float expression stored into a
             mutable record field (mixed-field records box floats;
             use a float array or an all-float record).

   Local [ref] cells are deliberately not flagged: the compiler's
   reference-unboxing pass ([Simplif.eliminate_ref]) compiles the
   non-escaping [let acc = ref 0 ... !acc] idiom to a mutable stack
   variable, so the hot loops' accumulators are allocation-free. *)

open Parsetree

let line_of = Lint_source.line_of

let boxed_int_modules = [ "Int64"; "Int32"; "Nativeint" ]

let boxed_int_fns =
  [
    "of_int"; "of_float"; "of_string"; "of_int32"; "of_nativeint"; "add"; "sub"; "mul";
    "div"; "rem"; "neg"; "abs"; "succ"; "pred"; "logand"; "logor"; "logxor"; "lognot";
    "shift_left"; "shift_right"; "shift_right_logical"; "min"; "max";
  ]

let float_op_heads =
  [ [ "+." ]; [ "-." ]; [ "*." ]; [ "/." ]; [ "**" ]; [ "float_of_int" ]; [ "Float"; "of_int" ] ]

let string_alloc_heads =
  [ [ "^" ]; [ "@" ]; [ "String"; "concat" ]; [ "String"; "sub" ]; [ "Bytes"; "concat" ];
    [ "string_of_int" ]; [ "string_of_float" ]; [ "string_of_bool" ] ]

(* Positional-parameter shape of a definition: how many [Nolabel]
   parameters it takes, and whether any parameter is optional.
   Optional parameters make syntactic partial-application detection
   unsound (a full call can omit them), so such functions are skipped;
   labelled parameters are left out of the count on both sides. *)
let rec param_shape (e : expression) =
  match e.pexp_desc with
  | Pexp_fun (lbl, _, _, body) ->
    let n, opt = param_shape body in
    (match lbl with
    | Asttypes.Nolabel -> (n + 1, opt)
    | Asttypes.Labelled _ -> (n, opt)
    | Asttypes.Optional _ -> (n, true))
  | Pexp_newtype (_, body) | Pexp_constraint (body, _) -> param_shape body
  | _ -> (0, false)

(* Strip the binding's own parameter chain: the leading funs are the
   function being defined, not closures it allocates per call. *)
let rec strip_params (e : expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> strip_params body
  | Pexp_newtype (_, body) -> strip_params body
  | Pexp_constraint (body, _) -> strip_params body
  | _ -> e

let resolve_def (g : Reachability.t) (f : Lint_source.file) ~current_module lid =
  match Lint_source.resolve_lid f lid with
  | Some [ x ] -> (
    match Reachability.find_def g (current_module, x) with
    | Some d -> Some d
    | None ->
      if current_module <> f.Lint_source.modname then
        Reachability.find_def g (f.Lint_source.modname, x)
      else None)
  | Some parts when List.length parts >= 2 ->
    let n = List.length parts in
    Reachability.find_def g (List.nth parts (n - 2), List.nth parts (n - 1))
  | _ -> None

(* Scan the body of one reachable def. *)
let scan_def (g : Reachability.t) parent ~(root : Reachability.def) (d : Reachability.def) =
  let f = d.Reachability.d_file in
  let file = f.Lint_source.path in
  let context =
    if d.Reachability.d_hot then
      Printf.sprintf "in [@hot] %s.%s" d.Reachability.d_module d.Reachability.d_name
    else
      let path =
        Reachability.witness_path parent ~node:(d.Reachability.d_module, d.Reachability.d_name)
        |> List.map (fun (m, n) -> m ^ "." ^ n)
        |> String.concat " -> "
      in
      Printf.sprintf "in %s.%s, reachable from [@hot] %s.%s (%s)" d.Reachability.d_module
        d.Reachability.d_name root.Reachability.d_module root.Reachability.d_name path
  in
  let emit ~loc ~rule msg =
    let line = line_of loc in
    if not (Lint_source.allowed f ~rule ~line) then
      Lint_diag.report ~file ~line ~rule (Printf.sprintf "%s %s" msg context)
  in
  let head_parts (ex : expression) =
    match ex.pexp_desc with
    | Pexp_ident { txt; _ } -> Lint_source.resolve_lid f txt
    | _ -> None
  in
  (* A tuple that is the immediate payload of a constructor ([x :: xs],
     [Pair (a, b)]) is the constructor's argument block, not a second
     allocation — remember it so the child visit stays quiet. *)
  let payload_tuples = ref [] in
  let expr_iter self (ex : expression) =
    (match ex.pexp_desc with
    | Pexp_fun _ | Pexp_function _ ->
      emit ~loc:ex.pexp_loc ~rule:"ALLOC001" "closure allocated"
    | Pexp_lazy _ -> emit ~loc:ex.pexp_loc ~rule:"ALLOC001" "lazy thunk allocated"
    | Pexp_apply (head, args) -> (
      (match head.pexp_desc with
      | Pexp_ident { txt; _ } -> (
        match resolve_def g f ~current_module:d.Reachability.d_module txt with
        | Some callee ->
          let arity, has_opt = param_shape callee.Reachability.d_expr in
          let given =
            List.length (List.filter (fun (l, _) -> l = Asttypes.Nolabel) args)
          in
          if (not has_opt) && arity > 0 && given < arity then
            emit ~loc:ex.pexp_loc ~rule:"ALLOC001"
              (Printf.sprintf
                 "partial application of %s.%s (%d of %d positional args) allocates a \
                  closure"
                 callee.Reachability.d_module callee.Reachability.d_name given arity)
        | None -> ())
      | _ -> ());
      match head_parts head with
      | Some ([ "Printf"; _ ] | [ "Format"; _ ]) ->
        emit ~loc:ex.pexp_loc ~rule:"ALLOC003" "Printf/Format call allocates"
      | Some parts when List.mem parts string_alloc_heads ->
        emit ~loc:ex.pexp_loc ~rule:"ALLOC003"
          (Printf.sprintf "%s allocates a fresh string/list" (String.concat "." parts))
      | Some [ m; fn ] when List.mem m boxed_int_modules && List.mem fn boxed_int_fns ->
        emit ~loc:ex.pexp_loc ~rule:"ALLOC003"
          (Printf.sprintf "%s.%s allocates a boxed %s" m fn (String.lowercase_ascii m))
      | Some [ ("compare" | "min" | "max") as fn ] | Some [ "Stdlib"; (("compare" | "min" | "max") as fn) ] ->
        emit ~loc:ex.pexp_loc ~rule:"ALLOC003"
          (Printf.sprintf
             "polymorphic %s boxes float arguments; use a monomorphic comparison (Int.%s / \
              Float.%s)"
             fn fn fn)
      | _ -> ())
    | Pexp_tuple _ ->
      if not (List.memq ex !payload_tuples) then
        emit ~loc:ex.pexp_loc ~rule:"ALLOC002" "tuple allocated"
    | Pexp_record _ -> emit ~loc:ex.pexp_loc ~rule:"ALLOC002" "record allocated"
    | Pexp_array _ -> emit ~loc:ex.pexp_loc ~rule:"ALLOC002" "array literal allocated"
    | Pexp_construct ({ txt; _ }, Some payload) ->
      (match payload.pexp_desc with
      | Pexp_tuple _ -> payload_tuples := payload :: !payload_tuples
      | _ -> ());
      let name = try String.concat "." (Longident.flatten txt) with _ -> "?" in
      emit ~loc:ex.pexp_loc ~rule:"ALLOC002"
        (Printf.sprintf "constructor %s with payload allocated" name)
    | Pexp_variant (_, Some { pexp_desc = Pexp_tuple _; _ }) ->
      (match ex.pexp_desc with
      | Pexp_variant (_, Some payload) -> payload_tuples := payload :: !payload_tuples
      | _ -> ());
      emit ~loc:ex.pexp_loc ~rule:"ALLOC002" "polymorphic variant with payload allocated"
    | Pexp_variant (_, Some _) ->
      emit ~loc:ex.pexp_loc ~rule:"ALLOC002" "polymorphic variant with payload allocated"
    | Pexp_setfield (_, _, rhs) -> (
      match
        match rhs.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
          Lint_source.resolve_lid f txt
        | _ -> None
      with
      | Some parts when List.mem parts float_op_heads ->
        emit ~loc:ex.pexp_loc ~rule:"ALLOC003"
          "float expression stored into a mutable record field is boxed per store; use a \
           float array or an all-float record"
      | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr self ex
  in
  let it = { Ast_iterator.default_iterator with expr = expr_iter } in
  it.expr it (strip_params d.Reachability.d_expr)

(* Entry point: scan everything reachable from every [@hot] root.  A
   def reachable from several roots is scanned once, attributed to the
   first root in (module, name) order. *)
let scan_all (g : Reachability.t) =
  let roots = Reachability.hot_roots g in
  let scanned = Hashtbl.create 64 in
  List.iter
    (fun (root : Reachability.def) ->
      let parent =
        Reachability.reach_from ~expand_init:false g
          [ (root.Reachability.d_module, root.Reachability.d_name) ]
      in
      Hashtbl.iter
        (fun node _ ->
          if not (Hashtbl.mem scanned node) then begin
            Hashtbl.replace scanned node ();
            match Reachability.find_def g node with
            (* Zero-arity bindings are module initializers: they run
               once at load time, not per hot call, so their bodies
               (interned profile paths, lookup tables) are exempt. *)
            | Some d when d.Reachability.d_arity > 0 -> scan_def g parent ~root d
            | Some _ | None -> ()
          end)
        parent)
    roots
