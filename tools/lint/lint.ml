(* Driver for the multi-pass static-analysis suite.

   Every table and figure this repo regenerates rests on the engine's
   promise of bit-for-bit reproducibility, and the engine hot path's
   performance rests on staying GC-quiet.  This suite enforces both
   statically:

     pass 1  parse every .ml once into the shared cache
             (Lint_source: per-file allows, aliases, mutable labels)
     pass 2  build the module-level reachability graph over toplevel
             bindings, [@hot] roots and the mutable-state index
             (Reachability)
     pass 3  run the rule families over the cached ASTs:
               Rules_det    DET001..DET004, MLI001  (determinism)
               Rules_race   RACE001..RACE004        (domain safety)
               Rules_alloc  ALLOC001..ALLOC003      (hot-path allocs)
     pass 4  report: text (default) / --json / --sarif, ratcheted
             against the committed BASELINE.json

   Suppression: file-level [@@@lint.allow "RULE"] or node-scoped
   [@lint.allow "RULE"] (covers the lines the annotated expression or
   let-binding spans); pair either with a comment justifying why the
   rule does not apply.  The ratchet baseline freezes pre-existing
   findings by (file, rule) count: `dune build @lint` stays green on
   frozen debt and fails on any new finding.

   Usage: lint.exe [options] [DIR|FILE...]
     --baseline FILE        ratchet against FILE (per-(file,rule) counts)
     --write-baseline FILE  regenerate the ratchet from current findings
     --no-baseline          fail on every finding (fixture tests)
     --json FILE            machine-readable findings
     --sarif FILE           SARIF 2.1.0 for CI artifact upload / viewers
     --brief                print file:line:RULE only (golden tests)
     --det004-scope PREFIX  add a DET004 Hashtbl-iteration scope prefix
                            (replaces the default scope; repeatable)

   Exit status: 0 clean (or all findings frozen), 1 new findings,
   2 usage/configuration error. *)

let usage () =
  prerr_endline
    "usage: lint.exe [--baseline FILE | --write-baseline FILE | --no-baseline]\n\
    \                [--json FILE] [--sarif FILE] [--brief]\n\
    \                [--det004-scope PREFIX]... [DIR|FILE...]";
  exit 2

(* ---------- directory walk ---------- *)

let rec walk dir acc =
  if not (Sys.file_exists dir && Sys.is_directory dir) then acc
  else
    Array.fold_left
      (fun acc entry ->
        if entry = "" || entry.[0] = '.' || entry = "_build" then acc
        else
          let path = Filename.concat dir entry in
          if Sys.is_directory path then walk path acc
          else if Filename.check_suffix path ".ml" then path :: acc
          else acc)
      acc (Sys.readdir dir)

let () =
  let baseline_path = ref (Some "tools/lint/BASELINE.json") in
  let write_baseline = ref None in
  let json_out = ref None in
  let sarif_out = ref None in
  let brief = ref false in
  let det004_scope = ref [] in
  let targets = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--baseline" :: path :: rest ->
      baseline_path := Some path;
      parse_args rest
    | "--no-baseline" :: rest ->
      baseline_path := None;
      parse_args rest
    | "--write-baseline" :: path :: rest ->
      write_baseline := Some path;
      parse_args rest
    | "--json" :: path :: rest ->
      json_out := Some path;
      parse_args rest
    | "--sarif" :: path :: rest ->
      sarif_out := Some path;
      parse_args rest
    | "--brief" :: rest ->
      brief := true;
      parse_args rest
    | "--det004-scope" :: prefix :: rest ->
      det004_scope := prefix :: !det004_scope;
      parse_args rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
      Printf.eprintf "lint: unknown option %s\n" arg;
      usage ()
    | arg :: rest ->
      targets := arg :: !targets;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let targets =
    match List.rev !targets with [] -> [ "lib"; "bin"; "examples"; "bench"; "tools" ] | ts -> ts
  in
  let files =
    List.concat_map
      (fun t ->
        if Sys.file_exists t && Sys.is_directory t then walk t []
        else if Sys.file_exists t && Filename.check_suffix t ".ml" then [ t ]
        else [])
      targets
    |> List.sort_uniq String.compare
  in
  if files = [] then begin
    prerr_endline "lint: no .ml files found (run from the repository root)";
    exit 2
  end;

  (* Pass 1: parse everything once into the shared cache. *)
  let sources = List.map Lint_source.load files in
  List.iter
    (fun (f : Lint_source.file) ->
      if f.Lint_source.parse_failed then
        Lint_diag.report ~file:f.Lint_source.path ~line:1 ~rule:"PARSE"
          "file does not parse")
    sources;

  (* Pass 2: reachability graph, hot roots, mutable-state index. *)
  let graph = Reachability.build sources in

  (* Pass 3: rule families. *)
  let det004_scope =
    match !det004_scope with [] -> Rules_det.default_det004_scope | s -> List.rev s
  in
  List.iter
    (fun f ->
      Rules_det.scan ~det004_scope f;
      Rules_det.check_mli f;
      Rules_mem.scan f;
      Rules_race.scan graph f)
    sources;
  Rules_alloc.scan_all graph;

  let vs = Lint_diag.sorted () in

  (* --write-baseline regenerates the ratchet and reports nothing. *)
  (match !write_baseline with
  | Some path ->
    Lint_diag.write_baseline path vs;
    Printf.eprintf "lint: baseline written to %s (%d finding(s) frozen in %d file(s))\n" path
      (List.length vs)
      (List.length
         (List.sort_uniq String.compare (List.map (fun v -> v.Lint_diag.file) vs)));
    exit 0
  | None -> ());

  (* Pass 4: ratchet + report. *)
  let fresh, frozen =
    match !baseline_path with
    | Some path when Sys.file_exists path -> (
      match Lint_diag.load_baseline path with
      | bl -> Lint_diag.against_baseline bl vs
      | exception Lint_diag.Bad_json msg ->
        Printf.eprintf "lint: cannot read baseline %s: %s\n" path msg;
        exit 2)
    | Some _ | None -> (vs, [])
  in
  let frozen_set = List.map (fun v -> v) frozen in
  let is_frozen v = List.memq v frozen_set in
  (match !json_out with
  | Some path ->
    let oc = open_out path in
    output_string oc (Lint_diag.to_json ~frozen:is_frozen vs);
    close_out oc
  | None -> ());
  (match !sarif_out with
  | Some path ->
    let oc = open_out path in
    output_string oc (Lint_diag.to_sarif ~frozen:is_frozen vs);
    close_out oc
  | None -> ());
  List.iter
    (fun (v : Lint_diag.violation) ->
      if !brief then Printf.printf "%s:%d:%s\n" v.file v.line v.rule
      else Printf.printf "%s:%d:%s %s\n" v.file v.line v.rule v.msg)
    fresh;
  if fresh = [] then begin
    Printf.eprintf "lint: OK (%d files clean%s)\n" (List.length files)
      (match frozen with
      | [] -> ""
      | fs -> Printf.sprintf ", %d finding(s) frozen in baseline" (List.length fs));
    exit 0
  end
  else begin
    Printf.eprintf "lint: %d new violation(s) in %d file(s)%s\n" (List.length fresh)
      (List.length
         (List.sort_uniq String.compare (List.map (fun v -> v.Lint_diag.file) fresh)))
      (match frozen with
      | [] -> ""
      | fs -> Printf.sprintf " (+%d frozen in baseline)" (List.length fs));
    exit 1
  end
