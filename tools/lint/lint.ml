(* Determinism lint for the soft-timers reproduction.

   Every table and figure this repo regenerates rests on the engine's
   promise of bit-for-bit reproducibility (FIFO tie-breaking in
   [Engine] + explicit [Prng] streams).  This binary enforces the
   contract statically, so a stray wall-clock read or global [Random]
   draw is caught at lint time instead of by a reviewer.

   Rules (see DESIGN.md, "Determinism contract and enforcement"):

     DET001  no wall-clock reads ([Unix.gettimeofday], [Unix.time],
             [Sys.time], ...) — simulated code must use virtual time.
             Benchmarks whose measurand is the wall clock are listed in
             [det001_allow] below.
     DET002  no global [Random.*] — every stochastic component takes an
             explicit [Simcore.Prng] stream, so runs replay from a seed.
     DET003  no polymorphic [=]/[<>]/[compare]/[min]/[max]/[<]/... on a
             time-valued expression — use [Time_ns] operations (or
             [Option.is_none]/[is_some] for optional deadlines).  Purely
             syntactic heuristic: an operand counts as time-valued when
             it mentions [Time_ns.*] or an identifier named [now]/[due]/
             [deadline] or ending in [_time]/[_deadline]/[_due]/[_ns].
             Uses inside [Time_ns.(...)] resolve to [Time_ns]'s own
             operators and are not flagged.
     DET004  no [Obj.magic] anywhere; no [Hashtbl.iter]/[Hashtbl.fold]
             in result-producing modules (lib/experiments, lib/obs,
             lib/simcore) — hash-bucket order is unspecified and leaks
             into emitted tables unless the keys are sorted first.
     MLI001  every module under lib/ ships an [.mli].
     PARSE   the file does not parse (the build would fail anyway).

   Suppression: a file-level attribute

     [@@@lint.allow "DET004"]

   disables the named rule for the whole file; pair it with a comment
   justifying why the rule does not apply.

   Usage: lint.exe DIR...   (scans every .ml beneath each DIR)
   Output: file:line:RULE message — machine readable, one per line.
   Exit status: 0 when clean, 1 when any violation was found.

   Built on compiler-libs only (Parse + Ast_iterator); purely
   syntactic, so module aliasing (e.g. [module R = Random]) can evade
   it — the point is to catch the honest mistakes cheaply. *)

open Parsetree

(* DET001 allowlist: files whose whole point is measuring real elapsed
   time.  bench/timer_ablation.ml reports wall-clock ns/op of the
   competing timer backends; bench/main.ml stamps per-experiment
   wall_clock_s into the --json baseline.  In both the wall clock is
   the measurand, not an input to the simulation, so reading it cannot
   perturb any simulated result. *)
let det001_allow = [ "bench/timer_ablation.ml"; "bench/main.ml"; "bench/store_arena.ml" ]

(* Directories whose modules produce results (tables, exported traces,
   metric dumps): Hashtbl iteration order must not reach their output. *)
let det004_hashtbl_scope = [ "lib/experiments/"; "lib/obs/"; "lib/simcore/" ]

type violation = { file : string; line : int; rule : string; msg : string }

let violations : violation list ref = ref []
let report ~file ~line ~rule msg = violations := { file; line; rule; msg } :: !violations

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

(* ---------- rule predicates ---------- *)

let wallclock_idents =
  [ [ "Unix"; "gettimeofday" ];
    [ "Unix"; "time" ];
    [ "Unix"; "gmtime" ];
    [ "Unix"; "localtime" ];
    [ "Unix"; "mktime" ];
    [ "Sys"; "time" ] ]

let flatten_opt lid = try Some (Longident.flatten lid) with _ -> None

let is_wallclock lid =
  match flatten_opt lid with
  | Some parts -> List.mem parts wallclock_idents
  | None -> false

let is_global_random lid =
  match flatten_opt lid with Some ("Random" :: _) -> true | _ -> false

let is_obj_magic lid =
  match flatten_opt lid with Some [ "Obj"; "magic" ] -> true | _ -> false

let hashtbl_iteration lid =
  match flatten_opt lid with
  | Some [ "Hashtbl"; ("iter" | "fold") ] ->
    (match lid with Longident.Ldot (_, f) -> Some f | _ -> None)
  | _ -> None

(* Polymorphic comparison operators as they appear unqualified (or
   qualified by Stdlib).  [Time_ns.compare] etc. are Ldot [Time_ns]
   and do not match. *)
let poly_compare_op lid =
  match lid with
  | Longident.Lident
      (("=" | "<>" | "==" | "!=" | "<" | "<=" | ">" | ">=" | "compare" | "min" | "max") as s)
    -> Some s
  | Longident.Ldot
      ( Longident.Lident "Stdlib",
        (("=" | "<>" | "<" | "<=" | ">" | ">=" | "compare" | "min" | "max") as s) ) ->
    Some s
  | _ -> None

let time_like_name name =
  match name with
  | "now" | "due" | "deadline" -> true
  | _ ->
    List.exists
      (fun suf -> Filename.check_suffix name suf)
      [ "_time"; "_deadline"; "_due"; "_ns" ]

(* Time_ns functions whose result is an ordinary int/float/string, not
   a time: an expression rooted in one of these is not time-valued even
   though the subtree mentions Time_ns (e.g. [Time_ns.compare a b > 0]
   is an int comparison). *)
let time_ns_escapes = [ "compare"; "to_ns"; "to_us"; "to_ms"; "to_sec"; "to_string"; "pp" ]

let escapes_time (ex : expression) =
  match ex.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Ldot (lid, fn); _ }; _ }, _) ->
    (match flatten_opt (Longident.Ldot (lid, fn)) with
    | Some parts -> List.mem "Time_ns" parts && List.mem fn time_ns_escapes
    | None -> false)
  | _ -> false

(* Does the expression (syntactically) mention a time value?  True when
   any identifier or record field within is time-like by name, or any
   path goes through the Time_ns module (excluding subtrees whose value
   already escaped to int/float, see [escapes_time]). *)
let expr_time_like e =
  let found = ref false in
  let last_part lid =
    match flatten_opt lid with
    | Some parts when parts <> [] -> Some (List.nth parts (List.length parts - 1))
    | _ -> None
  in
  let check_lid lid =
    (match flatten_opt lid with
    | Some parts when List.mem "Time_ns" parts ->
      (* The module path alone (Time_ns.compare, Time_ns.to_us) does not
         make the operand a time; only non-escaping uses do. *)
      (match last_part lid with
      | Some name when List.mem name time_ns_escapes -> ()
      | _ -> found := true)
    | _ -> ());
    match last_part lid with
    | Some name when time_like_name name -> found := true
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          if not (escapes_time ex) then begin
            (match ex.pexp_desc with
            | Pexp_ident { txt; _ } -> check_lid txt
            | Pexp_field (_, { txt; _ }) -> check_lid txt
            | _ -> ());
            Ast_iterator.default_iterator.expr self ex
          end);
    }
  in
  it.expr it e;
  !found

let opened_is_time_ns (od : open_declaration) =
  match od.popen_expr.pmod_desc with
  | Pmod_ident { txt = Longident.Lident "Time_ns"; _ } -> true
  | _ -> false

(* ---------- per-file scan ---------- *)

(* Collect file-level [@@@lint.allow "RULE"] attributes. *)
let allowed_rules (str : structure) =
  let allowed = ref [] in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_attribute { attr_name = { txt = "lint.allow"; _ }; attr_payload; _ } -> (
        match attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                _;
              };
            ] ->
          allowed := s :: !allowed
        | _ -> ())
      | _ -> ())
    str;
  !allowed

let scan_structure ~file ~in_det004_scope ~det001_allowed str =
  let allowed = allowed_rules str in
  let allow rule = List.mem rule allowed in
  let emit ~loc ~rule msg =
    if not (allow rule) then report ~file ~line:(line_of loc) ~rule msg
  in
  (* Depth of enclosing [Time_ns.(...)] / [let open Time_ns in] scopes,
     inside which comparison operators resolve to Time_ns's own. *)
  let time_ns_open_depth = ref 0 in
  let expr_iter self (ex : expression) =
    match ex.pexp_desc with
    | Pexp_open (od, body) when opened_is_time_ns od ->
      incr time_ns_open_depth;
      self.Ast_iterator.expr self body;
      decr time_ns_open_depth
    | _ ->
      (match ex.pexp_desc with
      | Pexp_ident { txt; loc } ->
        if is_wallclock txt && not det001_allowed then
          emit ~loc ~rule:"DET001"
            (Printf.sprintf
               "wall-clock read %s breaks reproducibility; use virtual time (Engine.now) or \
                add the file to the bench allowlist in tools/lint/lint.ml"
               (String.concat "." (Option.value ~default:[] (flatten_opt txt))));
        if is_global_random txt then
          emit ~loc ~rule:"DET002"
            "global Random.* is not replayable; draw from an explicit Simcore.Prng stream";
        if is_obj_magic txt then
          emit ~loc ~rule:"DET004" "Obj.magic defeats the type system";
        (match hashtbl_iteration txt with
        | Some f when in_det004_scope ->
          emit ~loc ~rule:"DET004"
            (Printf.sprintf
               "Hashtbl.%s iteration order is unspecified and leaks into results; sort the \
                keys first (or justify with [@@@lint.allow \"DET004\"])"
               f)
        | _ -> ())
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args)
        when !time_ns_open_depth = 0 -> (
        match poly_compare_op txt with
        | Some op when List.exists (fun (_, a) -> expr_time_like a) args ->
          emit ~loc ~rule:"DET003"
            (Printf.sprintf
               "polymorphic %s on a time-valued operand; use Time_ns comparisons \
                (Option.is_none/is_some for optional deadlines)"
               (if String.length op > 0 && not (op.[0] >= 'a' && op.[0] <= 'z') then
                  "(" ^ op ^ ")"
                else op))
        | _ -> ())
      | _ -> ());
      Ast_iterator.default_iterator.expr self ex
  in
  let it = { Ast_iterator.default_iterator with expr = expr_iter } in
  it.structure it str;
  allowed

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  Parse.implementation lexbuf

let scan_file path =
  let det001_allowed = List.mem path det001_allow in
  let in_det004_scope =
    List.exists
      (fun prefix ->
        String.length path >= String.length prefix
        && String.sub path 0 (String.length prefix) = prefix)
      det004_hashtbl_scope
  in
  match parse_file path with
  | exception _ ->
    report ~file:path ~line:1 ~rule:"PARSE" "file does not parse";
    []
  | str -> scan_structure ~file:path ~in_det004_scope ~det001_allowed str

(* ---------- directory walk ---------- *)

let rec walk dir acc =
  if not (Sys.file_exists dir && Sys.is_directory dir) then acc
  else
    Array.fold_left
      (fun acc entry ->
        if entry = "" || entry.[0] = '.' || entry = "_build" then acc
        else
          let path = Filename.concat dir entry in
          if Sys.is_directory path then walk path acc
          else if Filename.check_suffix path ".ml" then path :: acc
          else acc)
      acc (Sys.readdir dir)

let has_prefix prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let () =
  let dirs =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> [ "lib"; "bin"; "examples"; "bench" ]
    | dirs -> dirs
  in
  let files = List.sort String.compare (List.concat_map (fun d -> walk d []) dirs) in
  if files = [] then begin
    prerr_endline "lint: no .ml files found (run from the repository root)";
    exit 2
  end;
  List.iter
    (fun path ->
      let allowed = scan_file path in
      (* MLI001: every lib/ module declares an interface. *)
      if
        has_prefix "lib/" path
        && (not (Sys.file_exists (path ^ "i")))
        && not (List.mem "MLI001" allowed)
      then
        report ~file:path ~line:1 ~rule:"MLI001"
          "module has no interface; every lib/ module must ship an .mli")
    files;
  let vs =
    List.sort
      (fun a b ->
        let c = String.compare a.file b.file in
        if c <> 0 then c
        else
          let c = Int.compare a.line b.line in
          if c <> 0 then c else String.compare a.rule b.rule)
      !violations
  in
  List.iter (fun v -> Printf.printf "%s:%d:%s %s\n" v.file v.line v.rule v.msg) vs;
  if vs = [] then begin
    Printf.eprintf "lint: OK (%d files clean)\n" (List.length files);
    exit 0
  end
  else begin
    Printf.eprintf "lint: %d violation(s) in %d file(s)\n" (List.length vs)
      (List.length (List.sort_uniq String.compare (List.map (fun v -> v.file) vs)));
    exit 1
  end
