(* The shared parse cache and per-file syntactic facts every rule
   module consumes.  A file is parsed exactly once per lint run; the
   cached record also pre-extracts the facts that cut across rules:

   - file-level  [@@@lint.allow "RULE"]   (whole-file suppression)
   - per-node    [@lint.allow "RULE"]     (suppresses the rule on the
     lines spanned by the annotated expression / let-binding)
   - toplevel    module X = Path          aliases, resolved before any
     rule predicate runs so [module R = Random  let x = R.int 3] cannot
     evade DET002 (and likewise DET001/DET004)
   - record labels declared [mutable] anywhere in the file's type
     declarations (the RACE rules use them to recognise mutable record
     literals without type information)
   - [@hot] annotations on value bindings (the ALLOC roots) *)

open Parsetree

type file = {
  path : string;
  modname : string;  (* capitalized basename: lib/simcore/eventq.ml -> Eventq *)
  str : structure;  (* [] when the file does not parse *)
  parse_failed : bool;
  file_allows : string list;
  line_allows : (string * int * int) list;  (* rule, first line, last line *)
  aliases : (string * string list) list;  (* toplevel [module X = P.Q] -> X, [P;Q] *)
  mutable_labels : string list;
}

let line_of (loc : Location.t) = loc.loc_start.pos_lnum
let flatten_opt lid = try Some (Longident.flatten lid) with _ -> None

let modname_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* ---------- attribute extraction ---------- *)

let string_payload (attr : attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc = Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

let allow_rules_of_attrs (attrs : attributes) =
  List.filter_map
    (fun a -> if a.attr_name.txt = "lint.allow" then string_payload a else None)
    attrs

let is_hot_attrs (attrs : attributes) =
  List.exists (fun a -> a.attr_name.txt = "hot" || a.attr_name.txt = "lint.hot") attrs

(* File-level [@@@lint.allow "RULE"] floating attributes. *)
let file_allows_of (str : structure) =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_attribute a when a.attr_name.txt = "lint.allow" ->
        (match string_payload a with Some s -> [ s ] | None -> [])
      | _ -> [])
    str

(* Per-node [@lint.allow "RULE"]: the suppression covers every source
   line the annotated node spans.  Collected from expressions, value
   bindings and structure items — the three places the attribute
   naturally lands ([let[@lint.allow "X"] f = ...], [e [@lint.allow "X"]]). *)
let line_allows_of (str : structure) =
  let acc = ref [] in
  let add attrs (loc : Location.t) =
    List.iter
      (fun rule -> acc := (rule, loc.loc_start.pos_lnum, loc.loc_end.pos_lnum) :: !acc)
      (allow_rules_of_attrs attrs)
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          add e.pexp_attributes e.pexp_loc;
          Ast_iterator.default_iterator.expr self e);
      value_binding =
        (fun self vb ->
          add vb.pvb_attributes vb.pvb_loc;
          Ast_iterator.default_iterator.value_binding self vb);
      structure_item =
        (fun self si ->
          (match si.pstr_desc with
          | Pstr_value (_, vbs) -> List.iter (fun vb -> add vb.pvb_attributes si.pstr_loc) vbs
          | _ -> ());
          Ast_iterator.default_iterator.structure_item self si);
    }
  in
  it.structure it str;
  !acc

(* ---------- toplevel module aliases ---------- *)

let aliases_of (str : structure) =
  List.filter_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_module
          {
            pmb_name = { txt = Some name; _ };
            pmb_expr = { pmod_desc = Pmod_ident { txt = target; _ }; _ };
            _;
          } ->
        (match flatten_opt target with Some parts -> Some (name, parts) | None -> None)
      | _ -> None)
    str

(* ---------- mutable record labels ---------- *)

let mutable_labels_of (str : structure) =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun self td ->
          (match td.ptype_kind with
          | Ptype_record labels ->
            List.iter
              (fun ld -> if ld.pld_mutable = Mutable then acc := ld.pld_name.txt :: !acc)
              labels
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration self td);
    }
  in
  it.structure it str;
  !acc

(* ---------- parsing + cache ---------- *)

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  Parse.implementation lexbuf

let cache : (string, file) Hashtbl.t = Hashtbl.create 256

let load path =
  match Hashtbl.find_opt cache path with
  | Some f -> f
  | None ->
    let str, parse_failed = match parse_file path with s -> (s, false) | exception _ -> ([], true) in
    let f =
      {
        path;
        modname = modname_of_path path;
        str;
        parse_failed;
        file_allows = file_allows_of str;
        line_allows = line_allows_of str;
        aliases = aliases_of str;
        mutable_labels = mutable_labels_of str;
      }
    in
    Hashtbl.replace cache path f;
    f

(* ---------- alias resolution + suppression checks ---------- *)

(* Expand the head of a flattened path through the file's toplevel
   module aliases (chains resolve too, with a depth cap against
   cycles). *)
let resolve_parts (f : file) (parts : string list) =
  let rec go depth parts =
    if depth > 8 then parts
    else
      match parts with
      | head :: rest -> (
        match List.assoc_opt head f.aliases with
        | Some target -> go (depth + 1) (target @ rest)
        | None -> parts)
      | [] -> parts
  in
  go 0 parts

let resolve_lid (f : file) lid =
  match flatten_opt lid with Some parts -> Some (resolve_parts f parts) | None -> None

let allowed (f : file) ~rule ~line =
  List.mem rule f.file_allows
  || List.exists
       (fun (r, first, last) -> r = rule && line >= first && line <= last)
       f.line_allows
