(* benchdiff: compare two BENCH_*.json baselines written by
   [bench/main.exe --json].

   Flattens both documents to dotted-path leaves and reports, leaf by
   leaf, relative drift above a threshold plus keys present on only one
   side.  Wall-clock fields ([*.wall_clock_s]) vary between machines
   and are never compared.

   By default the diff is informational (exit 0 even when values
   drifted) so CI can surface regressions without blocking merges on
   expected simulation changes; [--strict] turns drift or missing keys
   into exit 1.  Unreadable or malformed input always exits 2.

   Usage: benchdiff.exe [--threshold PCT] [--mem-threshold PCT] [--strict] OLD.json NEW.json

   Memory-accounting leaves (the [mem] section and words/words_per_timer
   columns) gate under [--mem-threshold] when given, so a footprint
   regression can be held to its own bar.

   The parser below is a minimal recursive-descent JSON reader — just
   enough for the subset the bench harness emits (no scientific-string
   corner cases beyond what [float_of_string] accepts; objects with
   duplicate keys keep the last). *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> parse_error "offset %d: expected %c, found %c" st.pos c c'
  | None -> parse_error "offset %d: expected %c, found end of input" st.pos c

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else parse_error "offset %d: expected %s" st.pos word

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> parse_error "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
      st.pos <- st.pos + 1;
      match peek st with
      | None -> parse_error "unterminated escape"
      | Some c ->
        st.pos <- st.pos + 1;
        (match c with
        | '"' | '\\' | '/' -> Buffer.add_char b c
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if st.pos + 4 > String.length st.s then parse_error "truncated \\u escape";
          let hex = String.sub st.s st.pos 4 in
          st.pos <- st.pos + 4;
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> parse_error "bad \\u escape %S" hex
          in
          (* Paths only need to stay distinct; a literal escape of the
             code point is fine for non-ASCII. *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else Buffer.add_string b (Printf.sprintf "\\u%04x" code)
        | c -> parse_error "bad escape \\%c" c);
        go ())
    | Some c ->
      st.pos <- st.pos + 1;
      Buffer.add_char b c;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let numchar c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while match peek st with Some c when numchar c -> true | _ -> false do
    st.pos <- st.pos + 1
  done;
  let txt = String.sub st.s start (st.pos - start) in
  match float_of_string_opt txt with
  | Some v -> Num v
  | None -> parse_error "offset %d: bad number %S" start txt

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> parse_error "unexpected end of input"
  | Some '{' ->
    expect st '{';
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (k, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          members ()
        | _ -> expect st '}'
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    expect st '[';
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      Arr []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          elements ()
        | _ -> expect st ']'
      in
      elements ();
      Arr (List.rev !items)
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let parse_document s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then parse_error "trailing garbage at offset %d" st.pos;
  v

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Flattening: every scalar leaf becomes (dotted path, leaf).          *)

type leaf = Lnum of float | Lstr of string

let flatten root =
  let acc = ref [] in
  let rec go path v =
    match v with
    | Null -> acc := (path, Lstr "null") :: !acc
    | Bool b -> acc := (path, Lstr (string_of_bool b)) :: !acc
    | Num n -> acc := (path, Lnum n) :: !acc
    | Str s -> acc := (path, Lstr s) :: !acc
    | Arr items -> List.iteri (fun i v -> go (Printf.sprintf "%s[%d]" path i) v) items
    | Obj fields ->
      List.iter (fun (k, v) -> go (if path = "" then k else path ^ "." ^ k) v) fields
  in
  go "" root;
  List.rev !acc

let contains path needle =
  let n = String.length needle and m = String.length path in
  let rec at i = i + n <= m && (String.sub path i n = needle || at (i + 1)) in
  at 0

(* Wall-clock leaves depend on the machine the baseline was taken on;
   comparing them across hosts is pure noise. *)
let machine_dependent path = contains path "wall_clock"

(* Memory-accounting leaves: the bench harness's [mem] section and any
   words/words_per_timer column.  They gate under their own
   [--mem-threshold] so a footprint regression can be held to a
   different bar than timing-ish counts. *)
let memory_key path =
  contains path "words"
  || (String.length path >= 4 && String.sub path 0 4 = "mem.")

(* ------------------------------------------------------------------ *)

let () =
  let threshold = ref 5.0 in
  let mem_threshold = ref None in
  let strict = ref false in
  let files = ref [] in
  let usage () =
    prerr_endline
      "usage: benchdiff.exe [--threshold PCT] [--mem-threshold PCT] [--strict] OLD.json \
       NEW.json";
    exit 2
  in
  let rec parse_args = function
    | [] -> ()
    | "--strict" :: rest ->
      strict := true;
      parse_args rest
    | "--threshold" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t >= 0.0 -> threshold := t
      | _ ->
        Printf.eprintf "benchdiff: --threshold expects a percentage, got %S\n" v;
        usage ());
      parse_args rest
    | "--mem-threshold" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t >= 0.0 -> mem_threshold := Some t
      | _ ->
        Printf.eprintf "benchdiff: --mem-threshold expects a percentage, got %S\n" v;
        usage ());
      parse_args rest
    | [ "--threshold" ] | [ "--mem-threshold" ] -> usage ()
    | a :: rest ->
      files := a :: !files;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let old_path, new_path =
    match List.rev !files with [ a; b ] -> (a, b) | _ -> usage ()
  in
  let load path =
    match parse_document (read_file path) with
    | v -> flatten v
    | exception Parse_error msg ->
      Printf.eprintf "benchdiff: %s: %s\n" path msg;
      exit 2
    | exception Sys_error msg ->
      Printf.eprintf "benchdiff: %s\n" msg;
      exit 2
  in
  let old_leaves = load old_path in
  let new_leaves = load new_path in
  let drifted = ref 0 and missing = ref 0 and compared = ref 0 in
  let tbl = Hashtbl.create 256 in
  List.iter (fun (path, leaf) -> Hashtbl.replace tbl path leaf) old_leaves;
  List.iter
    (fun (path, nv) ->
      match Hashtbl.find_opt tbl path with
      | None ->
        if not (machine_dependent path) then begin
          incr missing;
          Printf.printf "only in %s: %s\n" new_path path
        end
      | Some ov ->
        Hashtbl.remove tbl path;
        if not (machine_dependent path) then begin
          incr compared;
          match (ov, nv) with
          | Lnum a, Lnum b ->
            let denom = Float.max (Float.abs a) (Float.abs b) in
            let drift_pct = if denom = 0.0 then 0.0 else Float.abs (b -. a) /. denom *. 100.0 in
            let gate =
              match !mem_threshold with
              | Some t when memory_key path -> t
              | Some _ | None -> !threshold
            in
            if drift_pct > gate then begin
              incr drifted;
              Printf.printf "drift %6.1f%%  %-60s %g -> %g\n" drift_pct path a b
            end
          | Lstr a, Lstr b ->
            if a <> b then begin
              incr drifted;
              Printf.printf "changed        %-60s %S -> %S\n" path a b
            end
          | _ ->
            incr drifted;
            Printf.printf "type changed   %s\n" path
        end)
    new_leaves;
  (* Leaves left in [tbl] existed only in the old baseline.  Hashtbl
     order is unspecified; sort for a stable report. *)
  let stale =
    Hashtbl.fold (fun path _ acc -> if machine_dependent path then acc else path :: acc) tbl []
    |> List.sort String.compare
  in
  List.iter
    (fun path ->
      incr missing;
      Printf.printf "only in %s: %s\n" old_path path)
    stale;
  Printf.printf "benchdiff: %d leaves compared, %d drifted >%g%%%s, %d missing\n" !compared
    !drifted !threshold
    (match !mem_threshold with
    | None -> ""
    | Some t -> Printf.sprintf " (mem keys >%g%%)" t)
    !missing;
  if !strict && (!drifted > 0 || !missing > 0) then exit 1
